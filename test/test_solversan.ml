(* SolverSan: the solver-state invariant sanitizer (R007..R013) and the
   DRUP proof-stream lint tier (D001..D009). The corruption matrix seeds
   one defect per code and demands exactly that code; the clean-run
   tests sweep the whole suite with the sanitizer armed and demand
   silence — zero false positives is what makes the codes meaningful. *)

module L = Simgen_sat.Literal
module S = Simgen_sat.Solver
module Drup = Simgen_sat.Drup
module Proof_lint = Simgen_check.Proof_lint
module Diagnostic = Simgen_check.Diagnostic
module Runtime_check = Simgen_base.Runtime_check
module Suite = Simgen_benchgen.Suite
module N = Simgen_network.Network
module Sweeper = Simgen_sweep.Sweeper
module Sweep_options = Simgen_sweep.Sweep_options
module Cert = Simgen_check.Certificate

let p v = L.pos v
let n v = L.neg v

(* ------------------------------------------------------------------ *)
(* DRUP text parser: edge cases                                        *)
(* ------------------------------------------------------------------ *)

(* Compare event streams through the canonical printer: two streams are
   equal iff they print to the same DRUP text. *)
let drup_text = Alcotest.testable Fmt.Dump.string ( = )

let check_events msg expected got =
  Alcotest.check drup_text msg
    (Drup.to_dimacs_proof expected)
    (Drup.to_dimacs_proof got)

let test_parse_basic () =
  let got = Drup.parse_string "1 2 0\nd 1 2 0\n0\n" in
  check_events "basic"
    [
      S.Learn [| L.of_dimacs 1; L.of_dimacs 2 |];
      S.Delete [| L.of_dimacs 1; L.of_dimacs 2 |];
      S.Learn [||];
    ]
    got

let test_parse_comments_blank_crlf () =
  let got =
    Drup.parse_string "c header\r\n\r\n  1 -2 0\r\nc mid\n\nd -2 1 0\r\n"
  in
  check_events "comments/blank/CRLF"
    [
      S.Learn [| L.of_dimacs 1; L.of_dimacs (-2) |];
      S.Delete [| L.of_dimacs (-2); L.of_dimacs 1 |];
    ]
    got

let test_parse_multi_clause_line () =
  (* drat-trim accepts several clauses per line; so do we. *)
  let got = Drup.parse_string "1 0 2 0 d 2 0\n" in
  check_events "three events on one line"
    [
      S.Learn [| L.of_dimacs 1 |];
      S.Learn [| L.of_dimacs 2 |];
      S.Delete [| L.of_dimacs 2 |];
    ]
    got

let test_parse_spanning_clause () =
  let got = Drup.parse_string "1\n2\n0\n" in
  check_events "clause spans lines"
    [ S.Learn [| L.of_dimacs 1; L.of_dimacs 2 |] ]
    got

let test_parse_delete_empty () =
  let got = Drup.parse_string "d 0\n" in
  check_events "d 0" [ S.Delete [||] ] got

let expect_parse_error text =
  match Drup.parse_string text with
  | events ->
      Alcotest.failf "expected Parse_error, got %d event(s)"
        (List.length events)
  | exception Drup.Parse_error _ -> ()

let test_parse_errors () =
  expect_parse_error "1 2\n";
  (* missing terminating 0 *)
  expect_parse_error "1 d 2 0\n";
  (* 'd' inside a clause *)
  expect_parse_error "1 x 0\n" (* non-integer token *)

(* ------------------------------------------------------------------ *)
(* Round-trip over genuine proofs: every suite benchmark               *)
(* ------------------------------------------------------------------ *)

let certified_sweep ?(seed = 7) ?(guided_iterations = 2) name =
  let net = Suite.lut_network name in
  let o =
    {
      Sweep_options.default with
      Sweep_options.seed;
      guided_iterations;
      certify = true;
    }
  in
  let sw = Sweeper.create o net in
  Sweeper.random_round sw;
  ignore (Sweeper.run_guided o sw);
  ignore (Sweeper.sat_sweep o sw);
  Sweeper.certificate sw

(* to_dimacs_proof -> parse_string must reproduce the event stream of
   every genuine proof slice, and the structural lint must stay silent
   on all of them (session slices delete clauses learned in earlier
   slices — exactly the case the structural regime must not flag). *)
let test_roundtrip_suites () =
  List.iter
    (fun name ->
      let cert = certified_sweep name in
      Array.iter
        (function
          | Cert.Session { events; _ } | Cert.Fresh { events; _ } ->
              let text = Drup.to_dimacs_proof events in
              let back = Drup.parse_string text in
              check_events (name ^ ": roundtrip") events back;
              Alcotest.(check int)
                (name ^ ": event count")
                (List.length events) (List.length back);
              let diags = Proof_lint.run events in
              Alcotest.(check int)
                (name ^ ": structural lint clean")
                0 (List.length diags)
          | Cert.Rebuild -> ())
        cert.Cert.queries)
    Suite.names

(* ------------------------------------------------------------------ *)
(* Proof-stream corruption matrix: one D code per seeded defect        *)
(* ------------------------------------------------------------------ *)

let codes diags =
  List.sort_uniq compare (List.map (fun d -> d.Diagnostic.code) diags)

let expect_codes msg expected diags =
  Alcotest.(check (list string)) msg expected (codes diags)

(* An unsatisfiable 2-variable formula with a genuine RUP refutation,
   the backdrop for the semantic (formula-aware) checks. *)
let formula2 = [ [ p 0; p 1 ]; [ n 0; p 1 ]; [ p 0; n 1 ]; [ n 0; n 1 ] ]

let test_d001_delete_never_added () =
  expect_codes "D001" [ "D001" ]
    (Proof_lint.run ~formula:formula2 [ S.Delete [| p 5 |] ])

let test_d002_delete_exhausted () =
  expect_codes "D002" [ "D002" ]
    (Proof_lint.run ~formula:formula2
       [ S.Delete [| p 0; p 1 |]; S.Delete [| p 0; p 1 |] ])

let test_d003_learn_after_empty () =
  expect_codes "D003" [ "D003" ]
    (Proof_lint.run [ S.Learn [||]; S.Learn [| p 1 |] ])

let test_d004_tautology () =
  expect_codes "D004" [ "D004" ] (Proof_lint.run [ S.Learn [| p 0; n 0 |] ])

let test_d005_duplicate_literal () =
  expect_codes "D005" [ "D005" ]
    (Proof_lint.run [ S.Learn [| p 0; p 0; p 1 |] ])

let test_d006_delete_then_use () =
  (* [p 1] is RUP only through (~x0 \/ x1): deleting that clause first
     makes the step derivable solely from the graveyard. *)
  expect_codes "D006" [ "D006" ]
    (Proof_lint.run ~formula:formula2
       [ S.Delete [| n 0; p 1 |]; S.Learn [| p 1 |] ])

let test_d007_group_removal_mismatch () =
  let expected = [ [ p 0; p 1 ]; [ n 0; p 1 ] ] in
  (* One delete outside the membership, one member never deleted. *)
  let diags =
    Proof_lint.lint_group_removal ~expected
      [ S.Delete [| p 0; p 1 |]; S.Delete [| p 5 |] ]
  in
  expect_codes "D007" [ "D007" ] diags;
  Alcotest.(check int) "both directions" 2 (List.length diags)

let test_d008_unsat_without_empty () =
  expect_codes "D008" [ "D008" ]
    (Proof_lint.run ~expect_unsat:true [ S.Learn [| p 1 |] ]);
  expect_codes "no D008 when derived" []
    (Proof_lint.run ~expect_unsat:true [ S.Learn [||] ])

let test_d009_trim_anomaly () =
  (* A genuine trim bail-out: the step is not RUP, so the forward pass
     reports it and returns the proof untrimmed. *)
  let anomalies = ref [] in
  let proof = [ S.Learn [| p 1 |] ] in
  let trimmed =
    Drup.trim ~on_anomaly:(fun a -> anomalies := a :: !anomalies)
      [ [ p 0 ] ]
      proof
  in
  Alcotest.(check bool) "proof returned untrimmed" true (trimmed == proof);
  (match !anomalies with
  | [ Drup.Non_rup_step 0 ] -> ()
  | _ -> Alcotest.fail "expected [Non_rup_step 0]");
  expect_codes "D009 (non-RUP step)" [ "D009" ]
    (List.map Proof_lint.trim_anomaly !anomalies);
  expect_codes "D009 (underivable goal)" [ "D009" ]
    [ Proof_lint.trim_anomaly Drup.Underivable_goal ]

(* A genuine refutation of [formula2] is clean in both regimes. *)
let test_proof_lint_clean () =
  let proof = [ S.Learn [| p 1 |]; S.Learn [||] ] in
  expect_codes "structural clean" [] (Proof_lint.run ~expect_unsat:true proof);
  expect_codes "semantic clean" []
    (Proof_lint.run ~formula:formula2 ~expect_unsat:true proof)

(* ------------------------------------------------------------------ *)
(* Solver corruption matrix: one R code per seeded corruption          *)
(* ------------------------------------------------------------------ *)

let expect_violation code f =
  match f () with
  | _ -> Alcotest.failf "expected %s violation" code
  | exception Runtime_check.Violation msg ->
      Alcotest.(check string)
        (code ^ " code")
        code
        (Runtime_check.violation_code msg)

(* A solver with an implication on the trail: whatever sign v0 is
   decided, v1 is implied through one of the two binary clauses. *)
let implication_solver () =
  let s = S.create () in
  let v = Array.init 3 (fun _ -> S.new_var s) in
  S.add_clause s [ p v.(0); p v.(1) ];
  S.add_clause s [ n v.(0); p v.(1) ];
  S.add_clause s [ p v.(1); p v.(2) ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  s

let test_r007_drop_watch () =
  let s = implication_solver () in
  S.audit s;
  S.corrupt s S.Drop_watch;
  expect_violation "R007" (fun () -> S.audit s)

let test_r008_scramble_reason () =
  (* [solve] backtracks to the root before returning, so only root-level
     assignments keep their reasons: imply v1 at level 0 through the
     unit v0, and keep an unrelated binary clause around as the scramble
     target. *)
  let s = S.create () in
  let v = Array.init 4 (fun _ -> S.new_var s) in
  S.add_clause s [ p v.(0) ];
  S.add_clause s [ n v.(0); p v.(1) ];
  S.add_clause s [ p v.(2); p v.(3) ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  S.audit s;
  S.corrupt s S.Scramble_reason;
  expect_violation "R008" (fun () -> S.audit s)

let test_r009_break_heap () =
  (* Unsolved: every variable still sits in the decision heap. *)
  let s = S.create () in
  let v = Array.init 4 (fun _ -> S.new_var s) in
  S.add_clause s [ p v.(0); p v.(1) ];
  S.add_clause s [ p v.(2); p v.(3) ];
  S.audit s;
  S.corrupt s S.Break_heap;
  expect_violation "R009" (fun () -> S.audit s)

let test_r010_break_fence () =
  (* Focused query whose cones do NOT conservatively extend: with the
     fence disabled, propagation assigns the out-of-focus x above the
     root and the per-conflict sample must catch it. With the fence
     intact the same query completes silently (the clean half below). *)
  let run ~corrupted =
    let s = S.create () in
    let f0 = S.new_var s in
    let f1 = S.new_var s in
    let x = S.new_var s in
    S.add_clause s [ n f0; p x ];
    S.add_clause s [ n x; p f1 ];
    S.add_clause s [ n f0; n f1 ];
    S.focus_decisions s [ f0; f1 ];
    S.set_audit s ~every:1;
    if corrupted then S.corrupt s S.Break_fence;
    S.solve ~assumptions:[ p f0 ] s
  in
  expect_violation "R010" (fun () -> run ~corrupted:true);
  (match run ~corrupted:false with
  | S.Sat | S.Unsat -> ()
  | exception Runtime_check.Violation msg ->
      Alcotest.failf "clean focused solve tripped the sanitizer: %s" msg)

let test_r011_leak_detached () =
  let s = implication_solver () in
  S.audit s;
  S.corrupt s S.Leak_detached;
  expect_violation "R011" (fun () -> S.audit s)

let test_r012_regress_stats () =
  let s = implication_solver () in
  S.audit s;
  (* arms the counter shadow *)
  S.corrupt s S.Regress_stats;
  expect_violation "R012" (fun () -> S.audit s)

let test_r013_skew_gauge () =
  let s = implication_solver () in
  S.audit s;
  S.corrupt s S.Skew_gauge;
  expect_violation "R013" (fun () -> S.audit s)

let test_corrupt_needs_target () =
  let s = S.create () in
  (match S.corrupt s S.Drop_watch with
  | () -> Alcotest.fail "Drop_watch on an empty solver must refuse"
  | exception Invalid_argument _ -> ());
  match S.corrupt s S.Break_heap with
  | () -> Alcotest.fail "Break_heap on an empty heap must refuse"
  | exception Invalid_argument _ -> ()

let test_audit_sampling () =
  let s = S.create () in
  Alcotest.(check bool) "off by default" false (S.audit_sampling s);
  S.set_audit s ~every:16;
  Alcotest.(check bool) "armed" true (S.audit_sampling s);
  S.set_audit s ~every:0;
  Alcotest.(check bool) "disarmed" false (S.audit_sampling s)

(* ------------------------------------------------------------------ *)
(* Clean runs: the armed sanitizer must stay silent on real sweeps     *)
(* ------------------------------------------------------------------ *)

(* Every suite benchmark, three seeds, full flow with the sampled
   sanitizer armed through Sweep_options.solver_audit. Any invariant
   violation escapes as Runtime_check.Violation and fails the test:
   this is the zero-false-positive matrix the R codes are gated on.
   Verdict parity with an unarmed sweep is asserted on a spot-check
   bench (the solver-audit bench gate covers the stacked subset). *)
let test_no_false_positives () =
  List.iter
    (fun name ->
      List.iter
        (fun seed ->
          let net = Suite.lut_network name in
          let o =
            {
              Sweep_options.default with
              Sweep_options.seed;
              guided_iterations = 1;
              solver_audit = true;
            }
          in
          let sw = Sweeper.create o net in
          Sweeper.random_round sw;
          ignore (Sweeper.run_guided o sw);
          ignore (Sweeper.sat_sweep o sw))
        [ 1; 2; 3 ])
    Suite.names

let test_audit_parity () =
  let partition ~solver_audit =
    let net = Suite.lut_network "dec" in
    let o =
      {
        Sweep_options.default with
        Sweep_options.seed = 7;
        guided_iterations = 2;
        solver_audit;
      }
    in
    let sw = Sweeper.create o net in
    Sweeper.random_round sw;
    ignore (Sweeper.run_guided o sw);
    ignore (Sweeper.sat_sweep o sw);
    List.init (N.num_nodes net) (Sweeper.representative sw)
  in
  Alcotest.(check (list int))
    "identical merge partition" (partition ~solver_audit:false)
    (partition ~solver_audit:true)

let () =
  Alcotest.run "solversan"
    [
      ( "drup-parser",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "comments/blank/CRLF" `Quick
            test_parse_comments_blank_crlf;
          Alcotest.test_case "multi-clause line" `Quick
            test_parse_multi_clause_line;
          Alcotest.test_case "spanning clause" `Quick
            test_parse_spanning_clause;
          Alcotest.test_case "d 0" `Quick test_parse_delete_empty;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "suite round-trips" `Slow test_roundtrip_suites;
        ] );
      ( "proof-lint",
        [
          Alcotest.test_case "D001 never added" `Quick
            test_d001_delete_never_added;
          Alcotest.test_case "D002 exhausted" `Quick test_d002_delete_exhausted;
          Alcotest.test_case "D003 learn after empty" `Quick
            test_d003_learn_after_empty;
          Alcotest.test_case "D004 tautology" `Quick test_d004_tautology;
          Alcotest.test_case "D005 duplicate" `Quick
            test_d005_duplicate_literal;
          Alcotest.test_case "D006 delete-then-use" `Quick
            test_d006_delete_then_use;
          Alcotest.test_case "D007 group mismatch" `Quick
            test_d007_group_removal_mismatch;
          Alcotest.test_case "D008 unsat unproved" `Quick
            test_d008_unsat_without_empty;
          Alcotest.test_case "D009 trim anomaly" `Quick test_d009_trim_anomaly;
          Alcotest.test_case "clean refutation" `Quick test_proof_lint_clean;
        ] );
      ( "solver-sanitizer",
        [
          Alcotest.test_case "R007 drop watch" `Quick test_r007_drop_watch;
          Alcotest.test_case "R008 scramble reason" `Quick
            test_r008_scramble_reason;
          Alcotest.test_case "R009 break heap" `Quick test_r009_break_heap;
          Alcotest.test_case "R010 break fence" `Quick test_r010_break_fence;
          Alcotest.test_case "R011 leak detached" `Quick
            test_r011_leak_detached;
          Alcotest.test_case "R012 regress stats" `Quick
            test_r012_regress_stats;
          Alcotest.test_case "R013 skew gauge" `Quick test_r013_skew_gauge;
          Alcotest.test_case "corrupt refuses no-target" `Quick
            test_corrupt_needs_target;
          Alcotest.test_case "sampling toggle" `Quick test_audit_sampling;
        ] );
      ( "clean-runs",
        [
          Alcotest.test_case "42 suites x 3 seeds, armed" `Slow
            test_no_false_positives;
          Alcotest.test_case "verdict parity" `Quick test_audit_parity;
        ] );
    ]
