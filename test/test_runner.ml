module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Rng = Simgen_base.Rng
module Runner = Simgen_runner
module Budget = Runner.Budget
module Job = Runner.Job
module Events = Runner.Events
module Pattern_cache = Runner.Pattern_cache
module Exec = Runner.Exec
module Pool = Runner.Pool
module Manifest = Runner.Manifest
module Sweeper = Simgen_sweep.Sweeper

let tt_and2 = TT.and_ (TT.var 0 2) (TT.var 1 2)
let tt_or2 = TT.or_ (TT.var 0 2) (TT.var 1 2)
let tt_xor2 = TT.xor (TT.var 0 2) (TT.var 1 2)

let random_net seed npis ngates =
  let rng = Rng.create seed in
  let net = N.create () in
  let ids = ref [] in
  for _ = 1 to npis do
    ids := N.add_pi net :: !ids
  done;
  for _ = 1 to ngates do
    let pool = Array.of_list !ids in
    let arity = 1 + Rng.int rng (min 4 (Array.length pool)) in
    let fanins = Array.init arity (fun _ -> Rng.choose rng pool) in
    ids := N.add_gate net (TT.random rng arity) fanins :: !ids
  done;
  let pool = Array.of_list !ids in
  for _ = 1 to 3 do
    N.add_po net (Rng.choose rng pool)
  done;
  net

(* f = (a & b) | (c & d), with the fanin orders given by [comm]. *)
let and_or_net comm =
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let c = N.add_pi net in
  let d = N.add_pi net in
  let pair x y = if comm then [| y; x |] else [| x; y |] in
  let x = N.add_gate net tt_and2 (pair a b) in
  let y = N.add_gate net tt_and2 (pair c d) in
  N.add_po net (N.add_gate net tt_or2 (pair x y));
  net

(* Like [and_or_net] but with an XOR root: differs from it on some
   inputs, so a CEC of the two is not equivalent. *)
let and_xor_net () =
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let c = N.add_pi net in
  let d = N.add_pi net in
  let x = N.add_gate net tt_and2 [| a; b |] in
  let y = N.add_gate net tt_and2 [| c; d |] in
  N.add_po net (N.add_gate net tt_xor2 [| x; y |]);
  net

(* A near-miss pair over [npis] inputs: z2 = z1 XOR (AND of all PIs), so
   the two gates differ on exactly one minterm in 2^npis. Random rounds
   (64 vectors) essentially never split them, guided generation is
   disabled by the caller, and the SAT sweep must disprove the pair —
   producing a genuine distinguishing pattern for the cache. *)
let near_miss_net npis =
  let net = N.create () in
  let pis = Array.init npis (fun _ -> N.add_pi net) in
  let conj = ref pis.(0) in
  for i = 1 to npis - 1 do
    conj := N.add_gate net tt_and2 [| !conj; pis.(i) |]
  done;
  let z1 = N.add_gate net tt_or2 [| pis.(0); pis.(1) |] in
  let z2 = N.add_gate net tt_xor2 [| z1; !conj |] in
  N.add_po net z1;
  N.add_po net z2;
  net

let run_job ?cache ?cancel ?(events = Events.null) spec =
  Exec.run ?cache ?cancel ~events ~worker:0 spec

let check_status msg expected actual =
  Alcotest.(check string) msg
    (Job.status_to_string expected)
    (Job.status_to_string actual)

(* ------------------------------------------------------------------ *)
(* Budget unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_budget_unlimited () =
  let b = Budget.start Budget.unlimited in
  Budget.note_sat_calls b 1_000_000;
  for _ = 1 to 100 do
    Budget.note_guided_iteration b
  done;
  Alcotest.(check bool) "never trips" false (Budget.should_stop b ());
  Alcotest.(check (option int)) "no call cap" None
    (Budget.remaining_sat_calls b)

let test_budget_sat_calls () =
  let b =
    Budget.start { Budget.unlimited with Budget.max_sat_calls = Some 5 }
  in
  Alcotest.(check (option int)) "full allowance" (Some 5)
    (Budget.remaining_sat_calls b);
  Budget.note_sat_calls b 3;
  Alcotest.(check (option int)) "partial allowance" (Some 2)
    (Budget.remaining_sat_calls b);
  Alcotest.(check bool) "within budget" false (Budget.should_stop b ());
  Budget.note_sat_calls b 2;
  Alcotest.(check bool) "tripped at the cap" true (Budget.should_stop b ());
  Alcotest.(check (option int)) "nothing left" (Some 0)
    (Budget.remaining_sat_calls b)

let test_budget_sticky_reason () =
  let b =
    Budget.start
      {
        Budget.deadline = None;
        watchdog = None;
        max_sat_calls = Some 1;
        max_guided_iterations = Some 1;
      }
  in
  Budget.note_sat_calls b 1;
  Alcotest.(check (option string)) "first exhaustion" (Some "sat-calls")
    (Option.map Budget.reason_to_string (Budget.check b));
  (* A second limit tripping later does not change the verdict. *)
  Budget.note_guided_iteration b;
  Alcotest.(check (option string)) "reason is sticky" (Some "sat-calls")
    (Option.map Budget.reason_to_string (Budget.check b))

let test_budget_cancel () =
  let cancel = Simgen_base.Shared.Atomic.make "test.cancel" false in
  let b = Budget.start ~cancel Budget.unlimited in
  Alcotest.(check bool) "not cancelled yet" false (Budget.should_stop b ());
  Simgen_base.Shared.Atomic.set cancel true;
  Alcotest.(check (option string)) "cancelled" (Some "cancelled")
    (Option.map Budget.reason_to_string (Budget.check b))

(* ------------------------------------------------------------------ *)
(* Pattern cache                                                       *)
(* ------------------------------------------------------------------ *)

let test_cache_dedup () =
  let c = Pattern_cache.create () in
  Alcotest.(check bool) "first add stores" true
    (Pattern_cache.add c [| true; false |]);
  Alcotest.(check bool) "identical vector rejected" false
    (Pattern_cache.add c [| true; false |]);
  Alcotest.(check bool) "distinct vector stores" true
    (Pattern_cache.add c [| false; true |]);
  Alcotest.(check int) "two stored" 2 (Pattern_cache.size c)

let test_cache_capacity () =
  let c = Pattern_cache.create ~capacity_per_key:2 () in
  ignore (Pattern_cache.add c [| true; true; true |]);
  ignore (Pattern_cache.add c [| true; false; false |]);
  ignore (Pattern_cache.add c [| false; true; false |]);
  Alcotest.(check int) "oldest evicted" 2 (Pattern_cache.size c);
  let vecs = Pattern_cache.borrow c ~npis:3 in
  Alcotest.(check bool) "newest survives" true
    (List.exists (fun v -> v = [| false; true; false |]) vecs);
  Alcotest.(check bool) "oldest gone" false
    (List.exists (fun v -> v = [| true; true; true |]) vecs)

let test_cache_key_isolation () =
  let c = Pattern_cache.create () in
  ignore (Pattern_cache.add c [| true; false |]);
  ignore (Pattern_cache.add c [| true; false; true |]);
  Alcotest.(check int) "npis=2 sees its own vectors" 1
    (List.length (Pattern_cache.borrow c ~npis:2));
  Alcotest.(check int) "npis=3 sees its own vectors" 1
    (List.length (Pattern_cache.borrow c ~npis:3));
  Alcotest.(check int) "npis=4 sees nothing" 0
    (List.length (Pattern_cache.borrow c ~npis:4));
  Alcotest.(check int) "two hits" 2 (Pattern_cache.hits c);
  Alcotest.(check int) "one miss" 1 (Pattern_cache.misses c)

(* ------------------------------------------------------------------ *)
(* Budgeted execution                                                  *)
(* ------------------------------------------------------------------ *)

(* Acceptance criterion: a job with an already-expired deadline returns
   [Budget_exhausted Deadline] with a partial cost history (the first
   random round always runs) instead of running to completion. *)
let test_deadline_partial_result () =
  let net = random_net 42 8 120 in
  let spec =
    Job.make ~id:0 ~seed:7 ~guided_iterations:20
      ~limits:{ Budget.unlimited with Budget.deadline = Some 0.0 }
      (Job.Sweep (Job.Inline net))
  in
  let r = run_job spec in
  check_status "deadline tripped"
    (Job.Budget_exhausted Budget.Deadline)
    r.Job.status;
  Alcotest.(check bool) "partial cost history" true (r.Job.cost_history <> []);
  Alcotest.(check int) "no guided work under an expired deadline" 0
    r.Job.guided.Sweeper.iterations;
  Alcotest.(check int) "no solver work under an expired deadline" 0
    r.Job.sat.Sweeper.calls;
  Alcotest.(check int) "final cost matches the history"
    (List.nth r.Job.cost_history (List.length r.Job.cost_history - 1))
    r.Job.final_cost

let test_max_sat_calls_budget () =
  (* Two equivalent-pair classes survive simulation, so a completed sweep
     needs at least two UNSAT calls; a one-call budget must trip. *)
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let c = N.add_pi net in
  let d = N.add_pi net in
  let x1 = N.add_gate net tt_and2 [| a; b |] in
  let x2 = N.add_gate net tt_and2 [| b; a |] in
  let y1 = N.add_gate net tt_or2 [| c; d |] in
  let y2 = N.add_gate net tt_or2 [| d; c |] in
  List.iter (N.add_po net) [ x1; x2; y1; y2 ];
  let spec =
    Job.make ~id:0 ~guided_iterations:0
      ~limits:{ Budget.unlimited with Budget.max_sat_calls = Some 1 }
      (Job.Sweep (Job.Inline net))
  in
  let r = run_job spec in
  check_status "call budget tripped"
    (Job.Budget_exhausted Budget.Sat_calls)
    r.Job.status;
  Alcotest.(check int) "exactly the budgeted calls ran" 1 r.Job.sat.Sweeper.calls

let test_max_guided_iterations_budget () =
  let net = random_net 43 8 120 in
  let spec =
    Job.make ~id:0 ~guided_iterations:10
      ~limits:{ Budget.unlimited with Budget.max_guided_iterations = Some 2 }
      (Job.Sweep (Job.Inline net))
  in
  let r = run_job spec in
  check_status "iteration budget tripped"
    (Job.Budget_exhausted Budget.Guided_iterations)
    r.Job.status;
  Alcotest.(check int) "exactly the budgeted rounds ran" 2
    r.Job.guided.Sweeper.iterations

let test_cec_equivalent () =
  let spec =
    Job.make ~id:0
      (Job.Cec (Job.Inline (and_or_net false), Job.Inline (and_or_net true)))
  in
  let r = run_job spec in
  check_status "commuted fanins are equivalent" Job.Equivalent r.Job.status

let test_cec_not_equivalent () =
  let n1 = and_or_net false in
  let n2 = and_xor_net () in
  let spec = Job.make ~id:0 (Job.Cec (Job.Inline n1, Job.Inline n2)) in
  let r = run_job spec in
  match r.Job.status with
  | Job.Not_equivalent { po; vector } ->
      Alcotest.(check int) "single PO pair" 0 po;
      let v1 = N.eval n1 vector and v2 = N.eval n2 vector in
      let o1 = (N.pos n1).(0) and o2 = (N.pos n2).(0) in
      Alcotest.(check bool) "witness distinguishes the outputs" true
        (v1.(o1) <> v2.(o2))
  | s -> Alcotest.failf "expected a counter-example, got %s" (Job.status_to_string s)

let test_failed_job_is_contained () =
  (* PI-count mismatch makes the second job fail; its siblings are
     unaffected and the pool still reports every job. *)
  let good = Job.make ~id:0 (Job.Sweep (Job.Inline (and_or_net false))) in
  let bad =
    Job.make ~id:1
      (Job.Cec (Job.Inline (and_or_net false), Job.Inline (near_miss_net 3)))
  in
  let report = Pool.run ~workers:1 [ good; bad ] in
  check_status "good job swept" Job.Swept report.Pool.results.(0).Job.status;
  (match report.Pool.results.(1).Job.status with
   | Job.Failed _ -> ()
   | s -> Alcotest.failf "expected failure, got %s" (Job.status_to_string s));
  Alcotest.(check string) "summary counts the failure" "2 jobs"
    (String.sub (Pool.summary report) 0 6)

(* ------------------------------------------------------------------ *)
(* Pool: cancellation, determinism, cache accounting                   *)
(* ------------------------------------------------------------------ *)

let test_cancellation () =
  let cancel = Simgen_base.Shared.Atomic.make "test.cancel" true in
  let jobs =
    List.init 4 (fun id ->
        Job.make ~id ~seed:(id + 1) (Job.Sweep (Job.Inline (random_net id 6 40))))
  in
  let report = Pool.run ~workers:2 ~cancel jobs in
  Array.iter
    (fun r ->
      check_status "every job cancelled"
        (Job.Budget_exhausted Budget.Cancelled)
        r.Job.status;
      Alcotest.(check bool) "even cancelled jobs carry a cost sample" true
        (r.Job.cost_history <> []))
    report.Pool.results

let batch_jobs () =
  [
    Job.make ~id:0 ~seed:11
      (Job.Cec (Job.Inline (and_or_net false), Job.Inline (and_or_net true)));
    Job.make ~id:1 ~seed:12
      (Job.Cec (Job.Inline (and_or_net false), Job.Inline (and_xor_net ())));
    Job.make ~id:2 ~seed:13 ~guided_iterations:5
      (Job.Sweep (Job.Inline (random_net 99 8 80)));
    Job.make ~id:3 ~seed:14 ~guided_iterations:0
      (Job.Sweep (Job.Inline (near_miss_net 10)));
  ]

let test_seed_determinism_across_workers () =
  (* No shared cache: per-job results must be identical however the jobs
     are scheduled across domains. *)
  let r1 = Pool.run ~workers:1 (batch_jobs ()) in
  let r2 = Pool.run ~workers:2 (batch_jobs ()) in
  Alcotest.(check int) "same job count"
    (Array.length r1.Pool.results)
    (Array.length r2.Pool.results);
  Array.iteri
    (fun i a ->
      let b = r2.Pool.results.(i) in
      Alcotest.(check int) "results stay in job order" i b.Job.spec.Job.id;
      check_status "same status" a.Job.status b.Job.status;
      Alcotest.(check int) "same final cost" a.Job.final_cost b.Job.final_cost;
      Alcotest.(check (list int)) "same cost history" a.Job.cost_history
        b.Job.cost_history;
      Alcotest.(check int) "same solver calls" a.Job.sat.Sweeper.calls
        b.Job.sat.Sweeper.calls;
      Alcotest.(check int) "same guided rounds" a.Job.guided.Sweeper.iterations
        b.Job.guided.Sweeper.iterations)
    r1.Pool.results

let test_cache_hit_accounting () =
  (* Job 0 must disprove the near-miss pair by SAT (random simulation has
     a ~2^-16 chance per vector of splitting it), contributing the
     counter-example to the cache; the identical job 1 replays it and
     starts pre-split, so it needs no solver call at all. *)
  let net = near_miss_net 16 in
  let jobs =
    [
      Job.make ~id:0 ~seed:5 ~guided_iterations:0 (Job.Sweep (Job.Inline net));
      Job.make ~id:1 ~seed:5 ~guided_iterations:0 (Job.Sweep (Job.Inline net));
    ]
  in
  let cache = Pattern_cache.create () in
  let report = Pool.run ~workers:1 ~cache jobs in
  let r0 = report.Pool.results.(0) and r1 = report.Pool.results.(1) in
  check_status "first job swept" Job.Swept r0.Job.status;
  check_status "second job swept" Job.Swept r1.Job.status;
  Alcotest.(check int) "first job found nothing to replay" 0 r0.Job.cache_hits;
  Alcotest.(check bool) "first job contributed its counter-examples" true
    (r0.Job.cache_added > 0);
  Alcotest.(check bool) "first job needed the solver" true
    (r0.Job.sat.Sweeper.disproved > 0);
  Alcotest.(check int) "second job replayed the cached patterns"
    r0.Job.cache_added r1.Job.cache_hits;
  Alcotest.(check int) "replay pre-split the classes: no solver disproofs" 0
    r1.Job.sat.Sweeper.disproved;
  Alcotest.(check int) "one cache hit, one miss recorded" 1
    (Pattern_cache.hits cache);
  Alcotest.(check int) "one miss recorded" 1 (Pattern_cache.misses cache);
  Alcotest.(check int) "cache retains the patterns" r0.Job.cache_added
    (Pattern_cache.size cache)

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let test_event_stream_shape () =
  let sink, drain = Events.memory () in
  let jobs =
    [
      Job.make ~id:0 ~label:"first" ~guided_iterations:2
        (Job.Sweep (Job.Inline (random_net 7 6 40)));
      Job.make ~id:1 ~label:"second"
        (Job.Cec (Job.Inline (and_or_net false), Job.Inline (and_or_net true)));
    ]
  in
  ignore (Pool.run ~workers:1 ~events:sink jobs);
  let events = drain () in
  List.iter
    (fun job ->
      let mine = List.filter (fun e -> e.Events.job = job) events in
      Alcotest.(check bool)
        (Printf.sprintf "job %d has events" job)
        true (mine <> []);
      (match mine with
       | { Events.payload = Events.Queued; _ } :: _ -> ()
       | _ -> Alcotest.failf "job %d: first event is not queued" job);
      (match List.rev mine with
       | { Events.payload = Events.Finished { budget; cost_history; _ }; _ }
         :: _ ->
           Alcotest.(check string)
             (Printf.sprintf "job %d within budget" job)
             "ok" budget;
           Alcotest.(check bool)
             (Printf.sprintf "job %d history in telemetry" job)
             true (cost_history <> [])
       | _ -> Alcotest.failf "job %d: last event is not finished" job);
      Alcotest.(check bool)
        (Printf.sprintf "job %d was started" job)
        true
        (List.exists
           (fun e ->
             match e.Events.payload with Events.Started _ -> true | _ -> false)
           mine))
    [ 0; 1 ];
  (* Timestamps are monotone within the (single-worker) stream. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "timestamps monotone" true
          (a.Events.at <= b.Events.at);
        monotone rest
    | _ -> ()
  in
  monotone events

let test_event_json () =
  let e =
    {
      Events.job = 3;
      label = "he said \"hi\"\\\n";
      at = 0.25;
      payload = Events.Started { worker = 2 };
    }
  in
  let json = Events.to_json e in
  Alcotest.(check string) "escaped JSON"
    "{\"job\":3,\"label\":\"he said \\\"hi\\\"\\\\\\n\",\"at\":0.250000,\"phase\":\"started\",\"worker\":2}"
    json;
  let f =
    {
      Events.job = 0;
      label = "j";
      at = 1.5;
      payload =
        Events.Finished
          {
            status = "swept";
            budget = "ok";
            final_cost = 4;
            cost_history = [ 9; 4 ];
            sat_calls = 2;
            sat_conflicts = 5;
            sat_propagations = 70;
            sat_restarts = 1;
            cache_hits = 0;
            cache_added = 1;
            attempts = 1;
            time = 0.5;
          };
    }
  in
  let json = Events.to_json f in
  Alcotest.(check bool) "history array serialized" true
    (let sub = "\"cost_history\":[9,4]" in
     let rec find i =
       i + String.length sub <= String.length json
       && (String.sub json i (String.length sub) = sub || find (i + 1))
     in
     find 0)

(* ------------------------------------------------------------------ *)
(* Manifest parsing                                                    *)
(* ------------------------------------------------------------------ *)

let test_manifest_parse () =
  let specs =
    Manifest.parse_string
      "# batch regression\n\n\
       cec apex2 apex2 stacked=true deadline=2.5 seed=7 label=stack\n\
       sweep alu4 iterations=3 random=2 max-sat=10 max-guided=4 strategy=RevS\n"
  in
  Alcotest.(check int) "two jobs" 2 (List.length specs);
  let j0 = List.nth specs 0 and j1 = List.nth specs 1 in
  Alcotest.(check int) "ids in file order" 0 j0.Job.id;
  Alcotest.(check int) "ids in file order" 1 j1.Job.id;
  Alcotest.(check string) "label" "stack" j0.Job.label;
  Alcotest.(check int) "seed" 7 j0.Job.seed;
  (match j0.Job.kind with
   | Job.Cec (Job.Suite_stacked "apex2", Job.Suite_stacked "apex2") -> ()
   | _ -> Alcotest.fail "stacked=true selects the putontop variant");
  (match j0.Job.limits.Budget.deadline with
   | Some d -> Alcotest.(check (float 1e-9)) "deadline" 2.5 d
   | None -> Alcotest.fail "deadline not parsed");
  (match j1.Job.kind with
   | Job.Sweep (Job.Suite "alu4") -> ()
   | _ -> Alcotest.fail "sweep of a suite benchmark");
  Alcotest.(check int) "guided iterations" 3 j1.Job.guided_iterations;
  Alcotest.(check int) "random rounds" 2 j1.Job.random_rounds;
  Alcotest.(check (option int)) "max-sat" (Some 10)
    j1.Job.limits.Budget.max_sat_calls;
  Alcotest.(check (option int)) "max-guided" (Some 4)
    j1.Job.limits.Budget.max_guided_iterations;
  Alcotest.(check string) "strategy" "RevS"
    (Simgen_core.Strategy.name j1.Job.strategy)

let test_manifest_errors () =
  let fails_with_line msg text =
    match Manifest.parse_string text with
    | _ -> Alcotest.failf "%s: expected a parse failure" msg
    | exception Failure e ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: error names the line (%s)" msg e)
          true
          (String.length e >= 7 && String.sub e 0 5 = "line ")
  in
  fails_with_line "unknown directive" "prove apex2 apex2\n";
  fails_with_line "missing circuit" "cec apex2\n";
  fails_with_line "bad integer" "sweep apex2 seed=abc\n";
  fails_with_line "unknown option" "sweep apex2 colour=blue\n";
  fails_with_line "unknown strategy" "sweep apex2 strategy=magic\n";
  fails_with_line "unknown benchmark" "sweep not_a_benchmark_name\n"

let () =
  Alcotest.run "simgen-runner"
    [
      ( "budget",
        [
          Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
          Alcotest.test_case "sat-call cap" `Quick test_budget_sat_calls;
          Alcotest.test_case "sticky reason" `Quick test_budget_sticky_reason;
          Alcotest.test_case "cancel flag" `Quick test_budget_cancel;
        ] );
      ( "pattern-cache",
        [
          Alcotest.test_case "dedup" `Quick test_cache_dedup;
          Alcotest.test_case "capacity eviction" `Quick test_cache_capacity;
          Alcotest.test_case "key isolation" `Quick test_cache_key_isolation;
        ] );
      ( "exec",
        [
          Alcotest.test_case "deadline yields a partial result" `Quick
            test_deadline_partial_result;
          Alcotest.test_case "sat-call budget" `Quick test_max_sat_calls_budget;
          Alcotest.test_case "guided-iteration budget" `Quick
            test_max_guided_iterations_budget;
          Alcotest.test_case "cec equivalent" `Quick test_cec_equivalent;
          Alcotest.test_case "cec counter-example" `Quick
            test_cec_not_equivalent;
          Alcotest.test_case "failure is contained" `Quick
            test_failed_job_is_contained;
        ] );
      ( "pool",
        [
          Alcotest.test_case "cancellation" `Quick test_cancellation;
          Alcotest.test_case "seed determinism across workers" `Quick
            test_seed_determinism_across_workers;
          Alcotest.test_case "cache-hit accounting" `Quick
            test_cache_hit_accounting;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "event stream shape" `Quick
            test_event_stream_shape;
          Alcotest.test_case "json serialization" `Quick test_event_json;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "parse" `Quick test_manifest_parse;
          Alcotest.test_case "errors" `Quick test_manifest_errors;
        ] );
    ]
