module L = Simgen_sat.Literal
module S = Simgen_sat.Solver
module Tseitin = Simgen_sat.Tseitin
module Dimacs = Simgen_sat.Dimacs
module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Rng = Simgen_base.Rng

(* ------------------------------------------------------------------ *)
(* Literal                                                             *)
(* ------------------------------------------------------------------ *)

let test_literal_encoding () =
  Alcotest.(check int) "pos var" 3 (L.var (L.pos 3));
  Alcotest.(check bool) "pos sign" false (L.sign (L.pos 3));
  Alcotest.(check bool) "neg sign" true (L.sign (L.neg 3));
  Alcotest.(check int) "negate" (L.neg 3) (L.negate (L.pos 3));
  Alcotest.(check int) "dimacs pos" 4 (L.to_dimacs (L.pos 3));
  Alcotest.(check int) "dimacs neg" (-4) (L.to_dimacs (L.neg 3));
  Alcotest.(check int) "dimacs roundtrip" (L.neg 6) (L.of_dimacs (-7));
  Alcotest.(check string) "pretty" "~x2" (L.to_string (L.neg 2))

(* ------------------------------------------------------------------ *)
(* Solver: hand-crafted cases                                          *)
(* ------------------------------------------------------------------ *)

let fresh n =
  let s = S.create () in
  let vars = Array.init n (fun _ -> S.new_var s) in
  (s, vars)

let test_empty_problem () =
  let s = S.create () in
  Alcotest.(check bool) "no clauses is sat" true (S.solve s = S.Sat)

let test_unit_propagation () =
  let s, v = fresh 3 in
  S.add_clause s [ L.pos v.(0) ];
  S.add_clause s [ L.neg v.(0); L.pos v.(1) ];
  S.add_clause s [ L.neg v.(1); L.pos v.(2) ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "chain forced" true
    (S.value s v.(0) && S.value s v.(1) && S.value s v.(2))

let test_trivial_unsat () =
  let s, v = fresh 1 in
  S.add_clause s [ L.pos v.(0) ];
  S.add_clause s [ L.neg v.(0) ];
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat);
  (* Remains unsat forever. *)
  Alcotest.(check bool) "still unsat" true (S.solve s = S.Unsat)

let test_empty_clause () =
  let s, _ = fresh 1 in
  S.add_clause s [];
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat)

let test_tautological_clause_ignored () =
  let s, v = fresh 2 in
  S.add_clause s [ L.pos v.(0); L.neg v.(0) ];
  S.add_clause s [ L.pos v.(1) ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "v1 true" true (S.value s v.(1))

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small UNSAT requiring real search. *)
  let s = S.create () in
  let x = Array.init 3 (fun _ -> Array.init 2 (fun _ -> S.new_var s)) in
  for p = 0 to 2 do
    S.add_clause s [ L.pos x.(p).(0); L.pos x.(p).(1) ]
  done;
  for h = 0 to 1 do
    for p1 = 0 to 2 do
      for p2 = p1 + 1 to 2 do
        S.add_clause s [ L.neg x.(p1).(h); L.neg x.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "php(3,2) unsat" true (S.solve s = S.Unsat);
  Alcotest.(check bool) "had conflicts" true (S.num_conflicts s > 0)

let test_php_5_4 () =
  let s = S.create () in
  let n = 5 and m = 4 in
  let x = Array.init n (fun _ -> Array.init m (fun _ -> S.new_var s)) in
  for p = 0 to n - 1 do
    S.add_clause s (List.init m (fun h -> L.pos x.(p).(h)))
  done;
  for h = 0 to m - 1 do
    for p1 = 0 to n - 1 do
      for p2 = p1 + 1 to n - 1 do
        S.add_clause s [ L.neg x.(p1).(h); L.neg x.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "php(5,4) unsat" true (S.solve s = S.Unsat)

let test_statistics_populated () =
  let s, v = fresh 6 in
  for i = 0 to 4 do
    S.add_clause s [ L.pos v.(i); L.pos v.(i + 1) ];
    S.add_clause s [ L.neg v.(i); L.neg v.(i + 1) ]
  done;
  ignore (S.solve s);
  Alcotest.(check bool) "decisions counted" true (S.num_decisions s > 0);
  Alcotest.(check bool) "propagations counted" true (S.num_propagations s > 0)

let test_stats_snapshot () =
  let s, v = fresh 4 in
  S.add_clause s [ L.pos v.(0); L.pos v.(1) ];
  S.add_clause s [ L.neg v.(0); L.pos v.(2) ];
  let before = S.stats s in
  ignore (S.solve s);
  let after = S.stats s in
  Alcotest.(check int) "pristine solver: no conflicts" 0 before.S.conflicts;
  Alcotest.(check bool) "snapshot fields match live counters" true
    (after.S.conflicts = S.num_conflicts s
    && after.S.decisions = S.num_decisions s
    && after.S.propagations = S.num_propagations s);
  Alcotest.(check bool) "monotone" true
    (after.S.propagations >= before.S.propagations)

let test_failed_assumptions_chain () =
  (* x -> y, assume x and ~y: both assumptions are in the final conflict. *)
  let s, v = fresh 2 in
  S.add_clause s [ L.neg v.(0); L.pos v.(1) ];
  let r = S.solve ~assumptions:[ L.pos v.(0); L.neg v.(1) ] s in
  Alcotest.(check bool) "unsat under assumptions" true (r = S.Unsat);
  let failed = List.sort compare (S.failed_assumptions s) in
  Alcotest.(check (list int)) "both assumptions relevant"
    (List.sort compare [ L.pos v.(0); L.neg v.(1) ])
    failed;
  (* The failure is assumption-local: the formula itself stays sat. *)
  Alcotest.(check bool) "solver usable afterwards" true (S.solve s = S.Sat)

let test_failed_assumptions_unit () =
  (* Unit clause ~a, assume a: falsified at level 0, reported alone. *)
  let s, v = fresh 2 in
  S.add_clause s [ L.neg v.(0) ];
  S.add_clause s [ L.pos v.(1) ];
  let r = S.solve ~assumptions:[ L.pos v.(1); L.pos v.(0) ] s in
  Alcotest.(check bool) "unsat under assumptions" true (r = S.Unsat);
  Alcotest.(check (list int)) "only the falsified assumption"
    [ L.pos v.(0) ]
    (S.failed_assumptions s)

let test_failed_assumptions_global_unsat () =
  let s, v = fresh 1 in
  S.add_clause s [ L.pos v.(0) ];
  S.add_clause s [ L.neg v.(0) ];
  let r = S.solve ~assumptions:[ L.pos v.(0) ] s in
  Alcotest.(check bool) "unsat" true (r = S.Unsat);
  Alcotest.(check (list int)) "global unsat blames no assumption" []
    (S.failed_assumptions s)

let test_assumption_guard_retirement () =
  (* The Sat_session miter protocol at solver level: a guarded constraint
     activated by an assumption, then retired by asserting its negation
     at level 0 — after which the formula is sat again and stays so. *)
  let s, v = fresh 3 in
  let act = v.(2) in
  S.add_clause s [ L.neg v.(0) ];
  S.add_clause s [ L.neg act; L.pos v.(0) ];
  Alcotest.(check bool) "guard violated under act" true
    (S.solve ~assumptions:[ L.pos act ] s = S.Unsat);
  Alcotest.(check (list int)) "act is the failed assumption" [ L.pos act ]
    (S.failed_assumptions s);
  S.add_clause s [ L.neg act ];
  Alcotest.(check bool) "sat after retirement" true (S.solve s = S.Sat);
  Alcotest.(check bool) "guard permanently off" true
    (not (S.value s act))

(* ------------------------------------------------------------------ *)
(* Solver: randomized cross-check against brute force                  *)
(* ------------------------------------------------------------------ *)

let brute_force nvars clauses =
  let sat_under m c =
    List.exists
      (fun l ->
        let v = (m lsr L.var l) land 1 = 1 in
        if L.sign l then not v else v)
      c
  in
  let rec go m =
    m < 1 lsl nvars
    && (List.for_all (sat_under m) clauses || go (m + 1))
  in
  go 0

let gen_cnf =
  QCheck2.Gen.(
    bind (int_range 1 9) (fun nvars ->
        bind (int_range 1 40) (fun nclauses ->
            map
              (fun seed ->
                let rng = Rng.create seed in
                let clause _ =
                  List.init
                    (1 + Rng.int rng 4)
                    (fun _ -> L.make (Rng.int rng nvars) (Rng.bool rng))
                in
                (nvars, List.init nclauses clause))
              (int_range 0 1_000_000))))

let prop_solver_correct =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"CDCL agrees with brute force" ~count:500 gen_cnf
       (fun (nvars, clauses) ->
         let s = S.create () in
         for _ = 1 to nvars do
           ignore (S.new_var s)
         done;
         List.iter (S.add_clause s) clauses;
         match S.solve s with
         | S.Unsat -> not (brute_force nvars clauses)
         | S.Sat ->
             (* The model must satisfy every clause. *)
             let m = S.model s in
             List.for_all
               (fun c ->
                 List.exists
                   (fun l ->
                     if L.sign l then not m.(L.var l) else m.(L.var l))
                   c)
               clauses))

let prop_assumptions_correct =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"assumptions behave like unit clauses" ~count:300
       gen_cnf (fun (nvars, clauses) ->
         let rng = Rng.create (Hashtbl.hash clauses) in
         let assumptions =
           List.init (1 + Rng.int rng 3) (fun _ ->
               L.make (Rng.int rng nvars) (Rng.bool rng))
         in
         let s = S.create () in
         for _ = 1 to nvars do
           ignore (S.new_var s)
         done;
         List.iter (S.add_clause s) clauses;
         let with_assumptions = S.solve ~assumptions s in
         let expected =
           brute_force nvars (clauses @ List.map (fun l -> [ l ]) assumptions)
         in
         let reusable = S.solve s in
         (with_assumptions = S.Sat) = expected
         && (reusable = S.Sat) = brute_force nvars clauses))

(* ------------------------------------------------------------------ *)
(* DRUP proofs                                                         *)
(* ------------------------------------------------------------------ *)

module Drup = Simgen_sat.Drup

let php n m =
  (* Pigeonhole clauses: n pigeons, m holes. *)
  let s = S.create () in
  S.enable_proof s;
  let x = Array.init n (fun _ -> Array.init m (fun _ -> S.new_var s)) in
  let clauses = ref [] in
  let add c =
    clauses := c :: !clauses;
    S.add_clause s c
  in
  for p = 0 to n - 1 do
    add (List.init m (fun h -> L.pos x.(p).(h)))
  done;
  for h = 0 to m - 1 do
    for p1 = 0 to n - 1 do
      for p2 = p1 + 1 to n - 1 do
        add [ L.neg x.(p1).(h); L.neg x.(p2).(h) ]
      done
    done
  done;
  (s, !clauses)

let test_drup_php_proof_valid () =
  let s, clauses = php 4 3 in
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat);
  Alcotest.(check bool) "proof recorded" true (S.proof_events s <> []);
  Alcotest.(check bool) "proof valid" true (Drup.check clauses (S.proof_events s) = Drup.Valid)

let test_drup_sat_proof_incomplete () =
  let s = S.create () in
  S.enable_proof s;
  let v = S.new_var s in
  let w = S.new_var s in
  let clauses = [ [ L.pos v; L.pos w ] ] in
  List.iter (S.add_clause s) clauses;
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "no empty clause derived" true
    (Drup.check clauses (S.proof_events s) <> Drup.Valid)

let test_drup_trivial_unsat () =
  let s = S.create () in
  S.enable_proof s;
  let v = S.new_var s in
  let clauses = [ [ L.pos v ]; [ L.neg v ] ] in
  List.iter (S.add_clause s) clauses;
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat);
  Alcotest.(check bool) "proof valid" true
    (Drup.check clauses (S.proof_events s) = Drup.Valid)

let test_drup_rejects_bogus_step () =
  (* A proof asserting an arbitrary unit that does not follow is invalid. *)
  let clauses = [ [ L.pos 0; L.pos 1 ] ] in
  let bogus = [ Simgen_sat.Solver.Learn [| L.pos 0 |] ] in
  (match Drup.check clauses bogus with
   | Drup.Invalid_step 0 -> ()
   | _ -> Alcotest.fail "bogus step accepted");
  (* But a genuine RUP step passes (and the proof is then incomplete). *)
  let ok =
    [ Simgen_sat.Solver.Learn [| L.pos 0; L.pos 1; L.pos 2 |] ]
  in
  Alcotest.(check bool) "weakening accepted, incomplete" true
    (Drup.check clauses ok = Drup.Incomplete)

let prop_drup_random_unsat =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"every UNSAT answer carries a valid proof"
       ~count:300 gen_cnf (fun (nvars, clauses) ->
         let s = S.create () in
         S.enable_proof s;
         for _ = 1 to nvars do
           ignore (S.new_var s)
         done;
         List.iter (S.add_clause s) clauses;
         match S.solve s with
         | S.Sat -> true
         | S.Unsat -> Drup.check clauses (S.proof_events s) = Drup.Valid))

let test_drup_dimacs_format () =
  let events =
    [ Simgen_sat.Solver.Learn [| L.pos 0; L.neg 2 |];
      Simgen_sat.Solver.Delete [| L.pos 0; L.neg 2 |];
      Simgen_sat.Solver.Learn [||] ]
  in
  Alcotest.(check string) "drup text" "1 -3 0\nd 1 -3 0\n0\n"
    (Drup.to_dimacs_proof events)

(* ------------------------------------------------------------------ *)
(* Tseitin                                                             *)
(* ------------------------------------------------------------------ *)

let small_net () =
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let x = N.add_gate net (TT.and_ (TT.var 0 2) (TT.var 1 2)) [| a; b |] in
  let y = N.add_gate net (TT.xor (TT.var 0 2) (TT.var 1 2)) [| a; b |] in
  N.add_po net x;
  N.add_po net y;
  (net, x, y)

let test_tseitin_consistency () =
  (* Every model of the encoding matches a network simulation. *)
  let net, x, _ = small_net () in
  let env = Tseitin.create () in
  let vars = Tseitin.encode_network env net in
  Tseitin.assert_true env (Simgen_sat.Literal.pos vars.(x));
  match S.solve (Tseitin.solver env) with
  | S.Unsat -> Alcotest.fail "x=1 must be reachable"
  | S.Sat ->
      let pis = Tseitin.pi_values env net vars in
      let vals = N.eval net pis in
      Alcotest.(check bool) "simulation agrees" true vals.(x)

let test_tseitin_miter_same_node () =
  let net, x, _ = small_net () in
  let env = Tseitin.create () in
  let vars = Tseitin.encode_network env net in
  let m = Tseitin.node_pair_miter env ~vars x x in
  Alcotest.(check bool) "x differs from x: unsat" true
    (S.solve ~assumptions:[ m ] (Tseitin.solver env) = S.Unsat)

let test_tseitin_miter_different_nodes () =
  let net, x, y = small_net () in
  let env = Tseitin.create () in
  let vars = Tseitin.encode_network env net in
  let m = Tseitin.node_pair_miter env ~vars x y in
  (match S.solve ~assumptions:[ m ] (Tseitin.solver env) with
   | S.Unsat -> Alcotest.fail "AND and XOR differ"
   | S.Sat ->
       let pis = Tseitin.pi_values env net vars in
       let vals = N.eval net pis in
       Alcotest.(check bool) "counterexample distinguishes" true
         (vals.(x) <> vals.(y)))

let test_tseitin_shared_pis_cec () =
  (* Two structurally different but equivalent networks. *)
  let make f =
    let net = N.create () in
    let a = N.add_pi net in
    let b = N.add_pi net in
    let g = N.add_gate net f [| a; b |] in
    N.add_po net g;
    (net, g)
  in
  let net1, g1 = make (TT.not_ (TT.and_ (TT.var 0 2) (TT.var 1 2))) in
  let net2, g2 =
    make (TT.or_ (TT.not_ (TT.var 0 2)) (TT.not_ (TT.var 1 2)))
  in
  let env = Tseitin.create () in
  let vars1, vars2 = Tseitin.encode_shared_pis env net1 net2 in
  let x = Tseitin.xor_var env vars1.(g1) vars2.(g2) in
  Alcotest.(check bool) "de-morgan equivalent" true
    (S.solve ~assumptions:[ Simgen_sat.Literal.pos x ] (Tseitin.solver env)
     = S.Unsat)

let prop_tseitin_full_agreement =
  (* For random networks: encode, force a random PI assignment with
     assumptions, and check every node variable matches simulation. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"tseitin agrees with simulation" ~count:100
       QCheck2.Gen.(int_range 0 1_000_000)
       (fun seed ->
         let rng = Rng.create seed in
         let net = N.create () in
         let ids = ref [] in
         for _ = 1 to 4 do
           ids := N.add_pi net :: !ids
         done;
         for _ = 1 to 15 do
           let pool = Array.of_list !ids in
           let arity = 1 + Rng.int rng 3 in
           let fanins = Array.init arity (fun _ -> Rng.choose rng pool) in
           ids := N.add_gate net (TT.random rng arity) fanins :: !ids
         done;
         N.add_po net (List.hd !ids);
         let env = Tseitin.create () in
         let vars = Tseitin.encode_network env net in
         let pis = Array.init 4 (fun _ -> Rng.bool rng) in
         let assumptions =
           List.concat
             (List.map
                (fun id ->
                  match N.kind net id with
                  | N.Pi idx ->
                      [ Simgen_sat.Literal.make vars.(id) (not pis.(idx)) ]
                  | N.Gate _ -> [])
                (Array.to_list (N.pis net)))
         in
         match S.solve ~assumptions (Tseitin.solver env) with
         | S.Unsat -> false
         | S.Sat ->
             let vals = N.eval net pis in
             let ok = ref true in
             N.iter_nodes net (fun id ->
                 if S.value (Tseitin.solver env) vars.(id) <> vals.(id) then
                   ok := false);
             !ok))

(* ------------------------------------------------------------------ *)
(* DIMACS                                                              *)
(* ------------------------------------------------------------------ *)

let test_dimacs_roundtrip () =
  let clauses = [ [ L.pos 0; L.neg 1 ]; [ L.pos 2 ]; [ L.neg 0; L.pos 1; L.neg 2 ] ] in
  let text = Dimacs.to_string 3 clauses in
  let nvars, parsed = Dimacs.parse_string text in
  Alcotest.(check int) "nvars" 3 nvars;
  Alcotest.(check int) "clauses" 3 (List.length parsed);
  Alcotest.(check bool) "same clauses" true (parsed = clauses)

let test_dimacs_comments_and_load () =
  let text = "c comment\np cnf 2 2\n1 -2 0\nc another\n2 0\n" in
  let s = S.create () in
  Dimacs.load_into s text;
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "v1 forced" true (S.value s 1)

let test_dimacs_errors () =
  (match Dimacs.parse_string "1 2 0\n" with
   | exception Dimacs.Parse_error _ -> ()
   | _ -> Alcotest.fail "missing header accepted");
  match Dimacs.parse_string "p cnf x y\n" with
  | exception Dimacs.Parse_error _ -> ()
  | _ -> Alcotest.fail "bad header accepted"

let () =
  Alcotest.run "sat"
    [
      ("literal", [ Alcotest.test_case "encoding" `Quick test_literal_encoding ]);
      ( "solver",
        [
          Alcotest.test_case "empty problem" `Quick test_empty_problem;
          Alcotest.test_case "unit propagation" `Quick test_unit_propagation;
          Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "tautology" `Quick test_tautological_clause_ignored;
          Alcotest.test_case "pigeonhole 3/2" `Quick test_pigeonhole_3_2;
          Alcotest.test_case "pigeonhole 5/4" `Quick test_php_5_4;
          Alcotest.test_case "statistics" `Quick test_statistics_populated;
          Alcotest.test_case "stats snapshot" `Quick test_stats_snapshot;
          Alcotest.test_case "failed assumptions chain" `Quick
            test_failed_assumptions_chain;
          Alcotest.test_case "failed assumption at level 0" `Quick
            test_failed_assumptions_unit;
          Alcotest.test_case "failed assumptions on global unsat" `Quick
            test_failed_assumptions_global_unsat;
          Alcotest.test_case "activation-literal retirement" `Quick
            test_assumption_guard_retirement;
          prop_solver_correct;
          prop_assumptions_correct;
        ] );
      ( "drup",
        [
          Alcotest.test_case "php proof" `Quick test_drup_php_proof_valid;
          Alcotest.test_case "sat incomplete" `Quick
            test_drup_sat_proof_incomplete;
          Alcotest.test_case "trivial unsat" `Quick test_drup_trivial_unsat;
          Alcotest.test_case "rejects bogus" `Quick test_drup_rejects_bogus_step;
          prop_drup_random_unsat;
          Alcotest.test_case "dimacs format" `Quick test_drup_dimacs_format;
        ] );
      ( "tseitin",
        [
          Alcotest.test_case "consistency" `Quick test_tseitin_consistency;
          Alcotest.test_case "self miter unsat" `Quick
            test_tseitin_miter_same_node;
          Alcotest.test_case "distinct nodes sat" `Quick
            test_tseitin_miter_different_nodes;
          Alcotest.test_case "shared-PI CEC" `Quick test_tseitin_shared_pis_cec;
          prop_tseitin_full_agreement;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "comments/load" `Quick test_dimacs_comments_and_load;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
        ] );
    ]
