module Aig = Simgen_aig.Aig
module N = Simgen_network.Network
module Rng = Simgen_base.Rng
module Arith = Simgen_benchgen.Arith
module Control = Simgen_benchgen.Control
module Pla = Simgen_benchgen.Pla
module Random_logic = Simgen_benchgen.Random_logic
module Redundancy = Simgen_benchgen.Redundancy
module Suite = Simgen_benchgen.Suite

let word_value vals word =
  Array.to_list word
  |> List.mapi (fun i l -> if Aig.eval_lit vals l then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

(* ------------------------------------------------------------------ *)
(* Arithmetic generators                                               *)
(* ------------------------------------------------------------------ *)

let test_ripple_adder () =
  let g = Aig.create () in
  let a = Array.init 4 (fun _ -> Aig.add_pi g) in
  let b = Array.init 4 (fun _ -> Aig.add_pi g) in
  let sums, cout = Arith.ripple_adder g a b ~cin:Aig.false_ in
  for x = 0 to 15 do
    for y = 0 to 15 do
      let vec = Array.init 8 (fun i ->
          if i < 4 then (x lsr i) land 1 = 1 else (y lsr (i - 4)) land 1 = 1)
      in
      let vals = Aig.eval g vec in
      let s = word_value vals sums + if Aig.eval_lit vals cout then 16 else 0 in
      Alcotest.(check int) (Printf.sprintf "%d+%d" x y) (x + y) s
    done
  done

let test_cla_matches_ripple () =
  let g = Aig.create () in
  let a = Array.init 5 (fun _ -> Aig.add_pi g) in
  let b = Array.init 5 (fun _ -> Aig.add_pi g) in
  let cin = Aig.add_pi g in
  let s1, c1 = Arith.ripple_adder g a b ~cin in
  let s2, c2 = Arith.carry_lookahead_adder g a b ~cin in
  let rng = Rng.create 401 in
  for _ = 1 to 300 do
    let vec = Array.init 11 (fun _ -> Rng.bool rng) in
    let vals = Aig.eval g vec in
    Alcotest.(check int) "sum equal" (word_value vals s1) (word_value vals s2);
    Alcotest.(check bool) "carry equal" (Aig.eval_lit vals c1) (Aig.eval_lit vals c2)
  done

let test_subtractor () =
  let g = Aig.create () in
  let a = Array.init 4 (fun _ -> Aig.add_pi g) in
  let b = Array.init 4 (fun _ -> Aig.add_pi g) in
  let diff, _ = Arith.subtractor g a b in
  for x = 0 to 15 do
    for y = 0 to 15 do
      let vec = Array.init 8 (fun i ->
          if i < 4 then (x lsr i) land 1 = 1 else (y lsr (i - 4)) land 1 = 1)
      in
      let vals = Aig.eval g vec in
      Alcotest.(check int) (Printf.sprintf "%d-%d" x y) ((x - y) land 15)
        (word_value vals diff)
    done
  done

let test_multiplier () =
  let g = Aig.create () in
  let a = Array.init 4 (fun _ -> Aig.add_pi g) in
  let b = Array.init 4 (fun _ -> Aig.add_pi g) in
  let prod = Arith.multiplier g a b in
  for x = 0 to 15 do
    for y = 0 to 15 do
      let vec = Array.init 8 (fun i ->
          if i < 4 then (x lsr i) land 1 = 1 else (y lsr (i - 4)) land 1 = 1)
      in
      let vals = Aig.eval g vec in
      Alcotest.(check int) (Printf.sprintf "%d*%d" x y) (x * y)
        (word_value vals prod)
    done
  done

let test_square () =
  let g = Aig.create () in
  let a = Array.init 4 (fun _ -> Aig.add_pi g) in
  let sq = Arith.square g a in
  for x = 0 to 15 do
    let vec = Array.init 4 (fun i -> (x lsr i) land 1 = 1) in
    let vals = Aig.eval g vec in
    Alcotest.(check int) "square" (x * x) (word_value vals sq)
  done

let test_alu_ops () =
  let g = Aig.create () in
  let op = Array.init 2 (fun _ -> Aig.add_pi g) in
  let a = Array.init 4 (fun _ -> Aig.add_pi g) in
  let b = Array.init 4 (fun _ -> Aig.add_pi g) in
  let out = Arith.alu g ~op a b in
  let eval opv x y =
    let vec = Array.init 10 (fun i ->
        if i < 2 then (opv lsr i) land 1 = 1
        else if i < 6 then (x lsr (i - 2)) land 1 = 1
        else (y lsr (i - 6)) land 1 = 1)
    in
    word_value (Aig.eval g vec) out
  in
  let rng = Rng.create 409 in
  for _ = 1 to 100 do
    let x = Rng.int rng 16 and y = Rng.int rng 16 in
    Alcotest.(check int) "add" ((x + y) land 15) (eval 0 x y);
    Alcotest.(check int) "sub" ((x - y) land 15) (eval 1 x y);
    Alcotest.(check int) "and" (x land y) (eval 2 x y);
    Alcotest.(check int) "xor" (x lxor y) (eval 3 x y)
  done

let test_cascades_have_depth () =
  let g = Aig.create () in
  let a = Array.init 6 (fun _ -> Aig.add_pi g) in
  let out = Arith.shift_add_cascade g ~rounds:4 a in
  Array.iter (fun l -> Aig.add_po g l) out;
  Alcotest.(check bool) "non-trivial" true (Aig.num_ands g > 20);
  let out2 = Arith.log_approx g a in
  Array.iter (fun l -> Aig.add_po g l) out2;
  Alcotest.(check bool) "log structure built" true (Aig.num_ands g > 30)

(* ------------------------------------------------------------------ *)
(* Control generators                                                  *)
(* ------------------------------------------------------------------ *)

let test_decoder () =
  let g = Aig.create () in
  let sel = Array.init 3 (fun _ -> Aig.add_pi g) in
  let outs = Control.decoder g sel in
  Alcotest.(check int) "8 outputs" 8 (Array.length outs);
  for code = 0 to 7 do
    let vec = Array.init 3 (fun i -> (code lsr i) land 1 = 1) in
    let vals = Aig.eval g vec in
    Array.iteri
      (fun i l ->
        Alcotest.(check bool) "one-hot" (i = code) (Aig.eval_lit vals l))
      outs
  done

let test_priority_encoder () =
  let g = Aig.create () in
  let xs = Array.init 6 (fun _ -> Aig.add_pi g) in
  let index, valid = Control.priority_encoder g xs in
  for m = 0 to 63 do
    let vec = Array.init 6 (fun i -> (m lsr i) land 1 = 1) in
    let vals = Aig.eval g vec in
    if m = 0 then
      Alcotest.(check bool) "invalid when empty" false (Aig.eval_lit vals valid)
    else begin
      let expected =
        let rec first i = if (m lsr i) land 1 = 1 then i else first (i + 1) in
        first 0
      in
      Alcotest.(check bool) "valid" true (Aig.eval_lit vals valid);
      Alcotest.(check int) "lowest index wins" expected (word_value vals index)
    end
  done

let test_majority () =
  let g = Aig.create () in
  let xs = Array.init 7 (fun _ -> Aig.add_pi g) in
  let maj = Control.majority g xs in
  for m = 0 to 127 do
    let vec = Array.init 7 (fun i -> (m lsr i) land 1 = 1) in
    let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 vec in
    let vals = Aig.eval g vec in
    Alcotest.(check bool)
      (Printf.sprintf "majority of %d ones" ones)
      (ones > 3) (Aig.eval_lit vals maj)
  done

let test_arbiter_grants () =
  let g = Aig.create () in
  let req = Array.init 4 (fun _ -> Aig.add_pi g) in
  let pointer = Array.init 2 (fun _ -> Aig.add_pi g) in
  let grants = Control.round_robin_arbiter g ~req ~pointer in
  for m = 0 to 15 do
    for p = 0 to 3 do
      let vec = Array.init 6 (fun i ->
          if i < 4 then (m lsr i) land 1 = 1 else (p lsr (i - 4)) land 1 = 1)
      in
      let vals = Aig.eval g vec in
      let granted =
        Array.to_list grants
        |> List.mapi (fun i l -> (i, Aig.eval_lit vals l))
        |> List.filter snd |> List.map fst
      in
      if m = 0 then Alcotest.(check (list int)) "no grant" [] granted
      else begin
        (* exactly one grant, to a requester, the first at/after pointer *)
        Alcotest.(check int) "single grant" 1 (List.length granted);
        let gi = List.hd granted in
        Alcotest.(check bool) "granted a requester" true ((m lsr gi) land 1 = 1);
        let expected =
          let rec scan k =
            let idx = (p + k) mod 4 in
            if (m lsr idx) land 1 = 1 then idx else scan (k + 1)
          in
          scan 0
        in
        Alcotest.(check int) "round robin order" expected gi
      end
    done
  done

let test_control_mix_deterministic () =
  let build seed =
    let g = Aig.create () in
    let xs = Array.init 8 (fun _ -> Aig.add_pi g) in
    let outs = Control.control_mix g (Rng.create seed) ~inputs:xs ~outputs:4 in
    Array.iter (fun l -> Aig.add_po g l) outs;
    g
  in
  let g1 = build 5 and g2 = build 5 in
  Alcotest.(check int) "same size" (Aig.num_ands g1) (Aig.num_ands g2);
  let rng = Rng.create 419 in
  for _ = 1 to 100 do
    let vec = Array.init 8 (fun _ -> Rng.bool rng) in
    Alcotest.(check (array bool)) "same function" (Aig.eval_pos g1 vec)
      (Aig.eval_pos g2 vec)
  done

(* ------------------------------------------------------------------ *)
(* PLA / random logic / redundancy                                     *)
(* ------------------------------------------------------------------ *)

let test_pla_shape () =
  let spec = { Pla.inputs = 10; outputs = 6; products = 30; literals = 4; terms_per_output = 5 } in
  let g = Pla.generate (Rng.create 7) spec in
  Alcotest.(check int) "inputs" 10 (Aig.num_pis g);
  Alcotest.(check int) "outputs" 6 (Aig.num_pos g);
  Alcotest.(check bool) "has logic" true (Aig.num_ands g > 10)

let test_random_logic_shape () =
  let spec = { Random_logic.inputs = 12; outputs = 8; layers = 5; layer_width = 20; locality = 2 } in
  let g = Random_logic.generate (Rng.create 9) spec in
  Alcotest.(check int) "inputs" 12 (Aig.num_pis g);
  Alcotest.(check int) "outputs" 8 (Aig.num_pos g)

let test_duplicate_variants_equivalent () =
  let rng = Rng.create 11 in
  let spec = { Pla.inputs = 8; outputs = 4; products = 20; literals = 3; terms_per_output = 4 } in
  let g = Pla.generate rng spec in
  let dup = Redundancy.duplicate_variants rng g in
  Alcotest.(check int) "one extra pi" (Aig.num_pis g + 1) (Aig.num_pis dup);
  (* Whatever the selector, the POs equal the original. *)
  for _ = 1 to 200 do
    let vec = Array.init 8 (fun _ -> Rng.bool rng) in
    let expected = Aig.eval_pos g vec in
    List.iter
      (fun sel ->
        let got = Aig.eval_pos dup (Array.append vec [| sel |]) in
        Alcotest.(check (array bool)) "variant equals original" expected got)
      [ false; true ]
  done

let test_inject_near_miss_rare () =
  let rng = Rng.create 13 in
  let spec = { Pla.inputs = 12; outputs = 6; products = 25; literals = 3; terms_per_output = 4 } in
  let g = Pla.generate rng spec in
  let inj = Redundancy.inject ~exact_fraction:0.0 ~rare_bits:8 rng g in
  (* [inject] adds extra POs for the internal near-miss pairs; the first
     POs correspond to the original outputs. *)
  let npos = Aig.num_pos g in
  let original_pos aig vec = Array.sub (Aig.eval_pos aig vec) 0 npos in
  (* With exact_fraction 0, every PO's second variant (selected by
     sel = 0) is a near miss: under random vectors its outputs rarely
     differ from the original. *)
  let diffs = ref 0 and trials = 500 in
  for _ = 1 to trials do
    let vec = Array.init 12 (fun _ -> Rng.bool rng) in
    let expected = Aig.eval_pos g vec in
    let got = original_pos inj (Array.append vec [| false |]) in
    if expected <> got then incr diffs
  done;
  Alcotest.(check bool) "rarely differs" true (!diffs < trials / 5);
  (* sel=1 selects the untouched copy: exact. *)
  for _ = 1 to 100 do
    let vec = Array.init 12 (fun _ -> Rng.bool rng) in
    Alcotest.(check (array bool)) "sel=1 exact" (Aig.eval_pos g vec)
      (original_pos inj (Array.append vec [| true |]))
  done

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

let test_suite_has_42 () =
  Alcotest.(check int) "42 benchmarks" 42 (List.length Suite.entries);
  Alcotest.(check int) "unique names" 42
    (List.length (List.sort_uniq compare Suite.names))

let test_suite_deterministic () =
  let a1 = Suite.aig "apex2" and a2 = Suite.aig "apex2" in
  Alcotest.(check int) "same ands" (Aig.num_ands a1) (Aig.num_ands a2);
  let rng = Rng.create 17 in
  for _ = 1 to 50 do
    let vec = Array.init (Aig.num_pis a1) (fun _ -> Rng.bool rng) in
    Alcotest.(check (array bool)) "same function" (Aig.eval_pos a1 vec)
      (Aig.eval_pos a2 vec)
  done

let test_suite_lut_networks_valid () =
  (* Spot-check one benchmark per family. *)
  List.iter
    (fun name ->
      let net = Suite.lut_network name in
      Alcotest.(check bool) "k bound" true (N.max_fanin_arity net <= 6);
      Alcotest.(check bool) "non-trivial" true (N.num_gates net > 10);
      Alcotest.(check string) "named" name (N.name net))
    [ "apex2"; "alu4"; "voter"; "b14_C" ]

let test_suite_lut_matches_aig () =
  let aig = Suite.aig "cps" in
  let net = Suite.lut_network "cps" in
  let rng = Rng.create 19 in
  for _ = 1 to 100 do
    let vec = Array.init (Aig.num_pis aig) (fun _ -> Rng.bool rng) in
    Alcotest.(check (array bool)) "mapped equals aig" (Aig.eval_pos aig vec)
      (N.eval_pos net vec)
  done

let test_suite_stacked () =
  let net = Suite.lut_network "square" in
  let stacked = Suite.stacked_lut_network "square" in
  (* square stacks 7 copies *)
  Alcotest.(check int) "7x gates" (7 * N.num_gates net) (N.num_gates stacked);
  Alcotest.(check bool) "deeper" true
    (Simgen_network.Level.depth stacked > Simgen_network.Level.depth net)

let test_suite_unknown_name () =
  Alcotest.check_raises "unknown benchmark" Not_found (fun () ->
      ignore (Suite.aig "nonexistent"))

let test_suite_families () =
  let count f =
    List.length (List.filter (fun e -> e.Suite.family = f) Suite.entries)
  in
  Alcotest.(check int) "ITC'99 count" 12 (count Suite.Itc99);
  Alcotest.(check bool) "PLA family largest" true (count Suite.Mcnc_pla >= 15);
  let stacked = List.filter (fun e -> e.Suite.stack_copies <> None) Suite.entries in
  Alcotest.(check int) "9 stacked entries (Table 2 lower)" 9 (List.length stacked)

let () =
  Alcotest.run "benchgen"
    [
      ( "arith",
        [
          Alcotest.test_case "ripple adder" `Quick test_ripple_adder;
          Alcotest.test_case "cla = ripple" `Quick test_cla_matches_ripple;
          Alcotest.test_case "subtractor" `Quick test_subtractor;
          Alcotest.test_case "multiplier" `Quick test_multiplier;
          Alcotest.test_case "square" `Quick test_square;
          Alcotest.test_case "alu ops" `Quick test_alu_ops;
          Alcotest.test_case "cascades" `Quick test_cascades_have_depth;
        ] );
      ( "control",
        [
          Alcotest.test_case "decoder" `Quick test_decoder;
          Alcotest.test_case "priority encoder" `Quick test_priority_encoder;
          Alcotest.test_case "majority" `Quick test_majority;
          Alcotest.test_case "arbiter" `Quick test_arbiter_grants;
          Alcotest.test_case "control mix" `Quick test_control_mix_deterministic;
        ] );
      ( "generators",
        [
          Alcotest.test_case "pla shape" `Quick test_pla_shape;
          Alcotest.test_case "random logic shape" `Quick test_random_logic_shape;
          Alcotest.test_case "duplicate variants" `Quick
            test_duplicate_variants_equivalent;
          Alcotest.test_case "near-miss injection" `Quick test_inject_near_miss_rare;
        ] );
      ( "suite",
        [
          Alcotest.test_case "42 entries" `Quick test_suite_has_42;
          Alcotest.test_case "deterministic" `Quick test_suite_deterministic;
          Alcotest.test_case "lut networks" `Quick test_suite_lut_networks_valid;
          Alcotest.test_case "lut matches aig" `Quick test_suite_lut_matches_aig;
          Alcotest.test_case "stacked" `Quick test_suite_stacked;
          Alcotest.test_case "unknown name" `Quick test_suite_unknown_name;
          Alcotest.test_case "families" `Quick test_suite_families;
        ] );
    ]
