module Bdd = Simgen_bdd.Bdd
module TT = Simgen_network.Truth_table
module N = Simgen_network.Network
module Rng = Simgen_base.Rng
module Backend = Simgen_sweep.Bdd_backend

let random_net rng npis ngates =
  let net = N.create () in
  let ids = ref [] in
  for _ = 1 to npis do
    ids := N.add_pi net :: !ids
  done;
  for _ = 1 to ngates do
    let pool = Array.of_list !ids in
    let arity = 1 + Rng.int rng (min 4 (Array.length pool)) in
    let fanins = Array.init arity (fun _ -> Rng.choose rng pool) in
    ids := N.add_gate net (TT.random rng arity) fanins :: !ids
  done;
  let pool = Array.of_list !ids in
  for _ = 1 to 3 do
    N.add_po net (Rng.choose rng pool)
  done;
  net

(* ------------------------------------------------------------------ *)
(* Basic algebra                                                       *)
(* ------------------------------------------------------------------ *)

let test_terminals () =
  let m = Bdd.manager 3 in
  Alcotest.(check bool) "zero is zero" true (Bdd.is_zero m (Bdd.zero m));
  Alcotest.(check bool) "one is one" true (Bdd.is_one m (Bdd.one m));
  Alcotest.(check bool) "not zero = one" true
    (Bdd.equal (Bdd.not_ m (Bdd.zero m)) (Bdd.one m));
  Alcotest.(check int) "no internal nodes yet" 0 (Bdd.num_nodes m)

let test_var_semantics () =
  let m = Bdd.manager 3 in
  let x1 = Bdd.var m 1 in
  Alcotest.(check bool) "x1 under 010" true (Bdd.eval m x1 [| false; true; false |]);
  Alcotest.(check bool) "x1 under 101" false (Bdd.eval m x1 [| true; false; true |])

let test_hash_consing () =
  let m = Bdd.manager 4 in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  let f1 = Bdd.and_ m a b in
  let f2 = Bdd.and_ m b a in
  Alcotest.(check bool) "commutative sharing" true (Bdd.equal f1 f2);
  let g1 = Bdd.not_ m (Bdd.or_ m (Bdd.not_ m a) (Bdd.not_ m b)) in
  Alcotest.(check bool) "de morgan is the same node" true (Bdd.equal f1 g1)

let test_canonicity_random () =
  (* Two different construction orders of the same function give the same
     root. *)
  let rng = Rng.create 7 in
  for _ = 1 to 30 do
    let m = Bdd.manager 5 in
    let tt = TT.random rng 5 in
    let vars = [| 0; 1; 2; 3; 4 |] in
    let f = Bdd.of_truth_table m tt vars in
    (* Rebuild through Shannon on variable 3 manually. *)
    let f0 = Bdd.of_truth_table m (TT.cofactor tt 3 false) vars in
    let f1 = Bdd.of_truth_table m (TT.cofactor tt 3 true) vars in
    let g = Bdd.ite m (Bdd.var m 3) f1 f0 in
    Alcotest.(check bool) "canonical" true (Bdd.equal f g)
  done

let test_eval_matches_truth_table () =
  let rng = Rng.create 11 in
  for _ = 1 to 30 do
    let n = 1 + Rng.int rng 6 in
    let m = Bdd.manager n in
    let tt = TT.random rng n in
    let f = Bdd.of_truth_table m tt (Array.init n Fun.id) in
    for minterm = 0 to (1 lsl n) - 1 do
      let assignment = Array.init n (fun i -> (minterm lsr i) land 1 = 1) in
      Alcotest.(check bool) "eval" (TT.get_bit tt minterm)
        (Bdd.eval m f assignment)
    done
  done

let test_sat_count () =
  let rng = Rng.create 13 in
  for _ = 1 to 30 do
    let n = 1 + Rng.int rng 6 in
    let m = Bdd.manager n in
    let tt = TT.random rng n in
    let f = Bdd.of_truth_table m tt (Array.init n Fun.id) in
    Alcotest.(check (float 0.01)) "sat_count"
      (float_of_int (TT.count_ones tt))
      (Bdd.sat_count m f)
  done

let test_any_sat () =
  let rng = Rng.create 17 in
  for _ = 1 to 30 do
    let n = 1 + Rng.int rng 6 in
    let m = Bdd.manager n in
    let tt = TT.random rng n in
    let f = Bdd.of_truth_table m tt (Array.init n Fun.id) in
    match Bdd.any_sat m f with
    | None ->
        Alcotest.(check (option bool)) "none only for const0" (Some false)
          (TT.is_const tt)
    | Some assignment ->
        Alcotest.(check bool) "assignment satisfies" true (Bdd.eval m f assignment)
  done

let test_size_and_quota () =
  let m = Bdd.manager ~max_nodes:8 6 in
  (* x0 & x1 & x2 needs 3 nodes; fine. *)
  let f =
    Bdd.and_ m (Bdd.var m 0) (Bdd.and_ m (Bdd.var m 1) (Bdd.var m 2))
  in
  Alcotest.(check int) "chain size" 3 (Bdd.size m f);
  (* A parity function of 6 variables exceeds 8 nodes. *)
  Alcotest.check_raises "quota" Bdd.Node_limit_exceeded (fun () ->
      let p = ref (Bdd.zero m) in
      for i = 0 to 5 do
        p := Bdd.xor m !p (Bdd.var m i)
      done)

let test_build_network () =
  let rng = Rng.create 19 in
  for _ = 1 to 15 do
    let net = random_net rng 5 20 in
    let m = Bdd.manager (N.num_pis net) in
    let bdds = Bdd.build_network m net in
    for minterm = 0 to 31 do
      let vec = Array.init 5 (fun i -> (minterm lsr i) land 1 = 1) in
      let vals = N.eval net vec in
      N.iter_nodes net (fun id ->
          Alcotest.(check bool) "node agrees" vals.(id)
            (Bdd.eval m bdds.(id) vec))
    done
  done

(* ------------------------------------------------------------------ *)
(* Verification backend                                                *)
(* ------------------------------------------------------------------ *)

let test_backend_pair () =
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let and2 = TT.and_ (TT.var 0 2) (TT.var 1 2) in
  let x1 = N.add_gate net and2 [| a; b |] in
  let x2 = N.add_gate net and2 [| b; a |] in
  let y = N.add_gate net (TT.or_ (TT.var 0 2) (TT.var 1 2)) [| a; b |] in
  List.iter (N.add_po net) [ x1; x2; y ];
  Alcotest.(check bool) "equal pair" true (Backend.check_pair net x1 x2 = Backend.Equal);
  (match Backend.check_pair net x1 y with
   | Backend.Counterexample cex ->
       let vals = N.eval net cex in
       Alcotest.(check bool) "cex valid" true (vals.(x1) <> vals.(y))
   | Backend.Equal | Backend.Quota -> Alcotest.fail "AND vs OR must differ")

let test_backend_agrees_with_sat () =
  let rng = Rng.create 23 in
  for _ = 1 to 20 do
    let net = random_net rng 5 20 in
    let g1 = N.num_nodes net - 1 and g2 = N.num_nodes net - 2 in
    if (not (N.is_pi net g1)) && not (N.is_pi net g2) then begin
      let sat_verdict = Simgen_sweep.Miter.check_pair net g1 g2 in
      let bdd_verdict = Backend.check_pair net g1 g2 in
      match (sat_verdict, bdd_verdict) with
      | Simgen_sweep.Miter.Equal, Backend.Equal -> ()
      | Simgen_sweep.Miter.Counterexample _, Backend.Counterexample _ -> ()
      | (Simgen_sweep.Miter.Equal | Simgen_sweep.Miter.Counterexample _),
        Backend.Quota ->
          Alcotest.fail "quota on tiny network"
      | Simgen_sweep.Miter.Equal, Backend.Counterexample _
      | Simgen_sweep.Miter.Counterexample _, Backend.Equal ->
          Alcotest.fail "SAT and BDD verdicts disagree"
      | Simgen_sweep.Miter.Unknown, _ ->
          Alcotest.fail "unexpected Unknown without a budget"
    end
  done

let test_backend_quota_fallback () =
  (* Deep parity-like network with a tiny quota triggers Quota. *)
  let net = N.create () in
  let pis = Array.init 16 (fun _ -> N.add_pi net) in
  let xor2 = TT.xor (TT.var 0 2) (TT.var 1 2) in
  let rec tree = function
    | [] -> assert false
    | [ x ] -> x
    | x :: y :: rest -> tree (rest @ [ N.add_gate net xor2 [| x; y |] ])
  in
  let root = tree (Array.to_list pis) in
  let other = N.add_gate net (TT.not_ (TT.var 0 1)) [| root |] in
  N.add_po net root;
  N.add_po net other;
  Alcotest.(check bool) "quota hit" true
    (Backend.check_pair ~max_nodes:4 net root other = Backend.Quota)

let test_backend_outputs () =
  let rng = Rng.create 29 in
  let net1 = random_net rng 5 25 in
  let net2 = N.copy net1 in
  (match Backend.check_outputs net1 net2 with
   | Some None -> ()
   | Some (Some _) -> Alcotest.fail "copies are equivalent"
   | None -> Alcotest.fail "quota on tiny network");
  (* Mutate a PO driver: flip the last gate. *)
  let net3 = N.create () in
  N.iter_nodes net1 (fun id ->
      match N.kind net1 id with
      | N.Pi _ -> ignore (N.add_pi net3)
      | N.Gate f ->
          let f = if id = N.num_nodes net1 - 1 then TT.not_ f else f in
          ignore (N.add_gate net3 f (N.fanins net1 id)));
  Array.iter (fun id -> N.add_po net3 id) (N.pos net1);
  let mutated_po_differs =
    Array.exists (fun po -> po = N.num_nodes net1 - 1) (N.pos net1)
  in
  if mutated_po_differs then
    match Backend.check_outputs net1 net3 with
    | Some (Some (po, cex)) ->
        let v1 = N.eval_pos net1 cex and v3 = N.eval_pos net3 cex in
        Alcotest.(check bool) "witness" true (v1.(po) <> v3.(po))
    | Some None -> Alcotest.fail "mutation missed"
    | None -> Alcotest.fail "quota"

let () =
  Alcotest.run "bdd"
    [
      ( "algebra",
        [
          Alcotest.test_case "terminals" `Quick test_terminals;
          Alcotest.test_case "var" `Quick test_var_semantics;
          Alcotest.test_case "hash consing" `Quick test_hash_consing;
          Alcotest.test_case "canonicity" `Quick test_canonicity_random;
          Alcotest.test_case "eval" `Quick test_eval_matches_truth_table;
          Alcotest.test_case "sat_count" `Quick test_sat_count;
          Alcotest.test_case "any_sat" `Quick test_any_sat;
          Alcotest.test_case "size/quota" `Quick test_size_and_quota;
          Alcotest.test_case "build network" `Quick test_build_network;
        ] );
      ( "backend",
        [
          Alcotest.test_case "pair" `Quick test_backend_pair;
          Alcotest.test_case "agrees with SAT" `Quick test_backend_agrees_with_sat;
          Alcotest.test_case "quota" `Quick test_backend_quota_fallback;
          Alcotest.test_case "outputs" `Quick test_backend_outputs;
        ] );
    ]
