module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Level = Simgen_network.Level
module Cone = Simgen_network.Cone
module Mffc = Simgen_network.Mffc
module Blif = Simgen_network.Blif
module Bench = Simgen_network.Bench_format
module Stack = Simgen_network.Stack_networks
module Rng = Simgen_base.Rng

let tt_and2 = TT.and_ (TT.var 0 2) (TT.var 1 2)
let tt_or2 = TT.or_ (TT.var 0 2) (TT.var 1 2)
let tt_xor2 = TT.xor (TT.var 0 2) (TT.var 1 2)
let tt_not = TT.not_ (TT.var 0 1)

(* A small reference network:
   pis a b c; x = a & b; y = b | c; z = x ^ y; pos: z, x *)
let small () =
  let net = N.create ~name:"small" () in
  let a = N.add_pi ~name:"a" net in
  let b = N.add_pi ~name:"b" net in
  let c = N.add_pi ~name:"c" net in
  let x = N.add_gate ~name:"x" net tt_and2 [| a; b |] in
  let y = N.add_gate ~name:"y" net tt_or2 [| b; c |] in
  let z = N.add_gate ~name:"z" net tt_xor2 [| x; y |] in
  N.add_po ~name:"z" net z;
  N.add_po ~name:"x" net x;
  (net, (a, b, c, x, y, z))

(* Random LUT network for property tests. *)
let random_net rng npis ngates =
  let net = N.create () in
  let ids = ref [] in
  for _ = 1 to npis do
    ids := N.add_pi net :: !ids
  done;
  for _ = 1 to ngates do
    let pool = Array.of_list !ids in
    let arity = 1 + Rng.int rng (min 4 (Array.length pool)) in
    let fanins = Array.init arity (fun _ -> Rng.choose rng pool) in
    let f = TT.random rng arity in
    ids := N.add_gate net f fanins :: !ids
  done;
  let pool = Array.of_list !ids in
  for _ = 1 to 3 do
    N.add_po net (Rng.choose rng pool)
  done;
  net

(* ------------------------------------------------------------------ *)
(* Core network invariants                                             *)
(* ------------------------------------------------------------------ *)

let test_counts () =
  let net, _ = small () in
  Alcotest.(check int) "pis" 3 (N.num_pis net);
  Alcotest.(check int) "pos" 2 (N.num_pos net);
  Alcotest.(check int) "gates" 3 (N.num_gates net);
  Alcotest.(check int) "nodes" 6 (N.num_nodes net);
  Alcotest.(check int) "max arity" 2 (N.max_fanin_arity net)

let test_kinds_and_names () =
  let net, (a, _, _, x, _, _) = small () in
  Alcotest.(check bool) "a is pi" true (N.is_pi net a);
  Alcotest.(check bool) "x not pi" false (N.is_pi net x);
  Alcotest.(check (option string)) "name" (Some "x") (N.node_name net x);
  Alcotest.(check (option string)) "po name" (Some "z") (N.po_name net 0)

let test_fanouts () =
  let net, (a, b, _, x, y, z) = small () in
  Alcotest.(check (list int)) "b feeds x and y" [ x; y ] (N.fanouts net b);
  Alcotest.(check (list int)) "a feeds x" [ x ] (N.fanouts net a);
  Alcotest.(check (list int)) "x feeds z" [ z ] (N.fanouts net x);
  Alcotest.(check int) "z has no fanouts" 0 (N.num_fanouts net z)

let test_eval () =
  let net, (_, _, _, x, _, z) = small () in
  (* a=1 b=1 c=0: x=1 y=1 z=0 *)
  let vals = N.eval net [| true; true; false |] in
  Alcotest.(check bool) "x" true vals.(x);
  Alcotest.(check bool) "z" false vals.(z);
  let pos = N.eval_pos net [| true; false; true |] in
  (* x=0 y=1 z=1 *)
  Alcotest.(check (array bool)) "pos" [| true; false |] pos

let test_copy_equivalent () =
  let rng = Rng.create 5 in
  for _ = 1 to 10 do
    let net = random_net rng 4 12 in
    let net' = N.copy net in
    for m = 0 to 15 do
      let vec = Array.init 4 (fun i -> (m lsr i) land 1 = 1) in
      Alcotest.(check (array bool)) "same POs" (N.eval_pos net vec)
        (N.eval_pos net' vec)
    done
  done

let test_add_gate_validation () =
  let net = N.create () in
  let a = N.add_pi net in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Network.add_gate: arity mismatch") (fun () ->
      ignore (N.add_gate net tt_and2 [| a |]));
  Alcotest.check_raises "forward reference"
    (Invalid_argument "Network.add_gate: bad fanin") (fun () ->
      ignore (N.add_gate net tt_and2 [| a; 99 |]))

(* ------------------------------------------------------------------ *)
(* Levels                                                              *)
(* ------------------------------------------------------------------ *)

let test_levels () =
  let net, (a, _, _, x, y, z) = small () in
  let levels = Level.compute net in
  Alcotest.(check int) "pi level" 0 levels.(a);
  Alcotest.(check int) "x level" 1 levels.(x);
  Alcotest.(check int) "y level" 1 levels.(y);
  Alcotest.(check int) "z level" 2 levels.(z);
  Alcotest.(check int) "depth" 2 (Level.depth net)

let test_levels_monotone () =
  let rng = Rng.create 7 in
  for _ = 1 to 10 do
    let net = random_net rng 5 30 in
    let levels = Level.compute net in
    N.iter_gates net (fun id ->
        Array.iter
          (fun fi ->
            Alcotest.(check bool) "level > fanin level" true
              (levels.(id) > levels.(fi) || Array.length (N.fanins net id) = 0))
          (N.fanins net id))
  done

(* ------------------------------------------------------------------ *)
(* Cones                                                               *)
(* ------------------------------------------------------------------ *)

let test_fanin_cone () =
  let net, (a, b, c, x, y, z) = small () in
  Alcotest.(check (list int)) "cone of z" [ a; b; x; c; y; z ]
    (Cone.fanin_cone net z);
  Alcotest.(check (list int)) "cone of x" [ a; b; x ] (Cone.fanin_cone net x);
  Alcotest.(check (list int)) "cone pis" [ a; b; c ] (Cone.cone_pis net z)

let test_cone_order_property () =
  let rng = Rng.create 11 in
  for _ = 1 to 10 do
    let net = random_net rng 5 30 in
    let target = N.num_nodes net - 1 in
    let cone = Cone.fanin_cone net target in
    (* Fanins-first: each node's fanins appear earlier in the list. *)
    let pos = Hashtbl.create 16 in
    List.iteri (fun i id -> Hashtbl.replace pos id i) cone;
    List.iter
      (fun id ->
        Array.iter
          (fun fi ->
            Alcotest.(check bool) "fanin before node" true
              (Hashtbl.find pos fi < Hashtbl.find pos id))
          (N.fanins net id))
      cone
  done

let test_fanout_cone () =
  let net, (_, b, _, x, y, z) = small () in
  let fo = Cone.fanout_cone net b in
  List.iter
    (fun id ->
      Alcotest.(check bool) "expected member" true (List.mem id [ b; x; y; z ]))
    fo;
  Alcotest.(check int) "size" 4 (List.length fo)

let test_member_mask () =
  let net, (a, _, _, x, _, _) = small () in
  let mask = Cone.member_mask net [ a; x ] in
  Alcotest.(check bool) "a in" true mask.(a);
  Alcotest.(check bool) "x in" true mask.(x);
  Alcotest.(check int) "two members" 2
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask)

(* ------------------------------------------------------------------ *)
(* MFFC                                                                *)
(* ------------------------------------------------------------------ *)

let test_mffc_shared_node_excluded () =
  (* y feeds both z and a second PO cone; x feeds only z. *)
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let x = N.add_gate net tt_not [| a |] in
  let y = N.add_gate net tt_not [| b |] in
  let z = N.add_gate net tt_and2 [| x; y |] in
  let w = N.add_gate net tt_not [| y |] in
  N.add_po net z;
  N.add_po net w;
  let mffc_z = Mffc.compute net z in
  Alcotest.(check bool) "x in MFFC(z)" true (List.mem x mffc_z);
  Alcotest.(check bool) "y not in MFFC(z)" false (List.mem y mffc_z);
  Alcotest.(check bool) "root in MFFC" true (List.mem z mffc_z)

let test_mffc_pi () =
  let net, (a, _, _, _, _, _) = small () in
  Alcotest.(check (list int)) "PI has empty MFFC" [] (Mffc.compute net a)

let test_mffc_subset_of_cone () =
  let rng = Rng.create 13 in
  for _ = 1 to 10 do
    let net = random_net rng 5 30 in
    N.iter_gates net (fun id ->
        let mffc = Mffc.compute net id in
        let cone = Cone.fanin_cone net id in
        List.iter
          (fun m ->
            Alcotest.(check bool) "member of cone" true (List.mem m cone);
            Alcotest.(check bool) "member is a gate" false (N.is_pi net m))
          mffc)
  done

let test_mffc_fanout_closure () =
  (* Non-root members' fanouts all stay inside the MFFC. *)
  let rng = Rng.create 17 in
  for _ = 1 to 10 do
    let net = random_net rng 5 30 in
    N.iter_gates net (fun id ->
        let mffc = Mffc.compute net id in
        List.iter
          (fun m ->
            if m <> id then
              List.iter
                (fun fo ->
                  Alcotest.(check bool) "fanout inside" true (List.mem fo mffc))
                (N.fanouts net m))
          mffc)
  done

let test_mffc_depth_figure4c () =
  (* Figure 4c: the left MFFC is the single gate x (depth 0); the right
     one has leaves at levels 1, 2, 3 with output level 3 -> depth 1. *)
  let net = N.create () in
  let p1 = N.add_pi net in
  let p2 = N.add_pi net in
  let p3 = N.add_pi net in
  let p4 = N.add_pi net in
  (* Right cone: m (level1), n (level2), y (level3), out r (level 4)... we
     reproduce levels 1,2,3 with output at level 3: leaves m,n,y where y is
     also the output?  Simpler: build cone with chain m->n->r and leaf y
     feeding r; levels: m=1, n=2, y=3 impossible for leaf...  Instead test
     the formula directly on a chain: root at level 3 with leaves at
     levels 1 and 3 -> depth (2+0)/2 = 1. *)
  let l1 = N.add_gate net tt_not [| p1 |] in
  (* level 1, leaf *)
  let l2 = N.add_gate net tt_and2 [| l1; p2 |] in
  (* level 2 *)
  let y3 = N.add_gate net (TT.and_ (TT.var 0 3) (TT.and_ (TT.var 1 3) (TT.var 2 3)))
      [| p3; p4; l2 |]
  in
  (* level 3: root *)
  N.add_po net y3;
  let levels = Level.compute net in
  Alcotest.(check int) "root level" 3 levels.(y3);
  (* MFFC(y3) = {l1; l2; y3}; leaves = {l1}; depth = 3-1 = 2 *)
  let d = Mffc.depth net levels y3 in
  Alcotest.(check (float 0.001)) "depth" 2.0 d;
  (* Singleton MFFC: a gate whose fanins are PIs has depth 0. *)
  Alcotest.(check (float 0.001)) "singleton depth" 0.0
    (Mffc.depth net levels l1)

let test_mffc_cache_consistency () =
  let rng = Rng.create 19 in
  let net = random_net rng 5 30 in
  let cache = Mffc.cache net in
  let levels = Level.compute net in
  N.iter_gates net (fun id ->
      Alcotest.(check (float 0.0001))
        "cached = direct"
        (Mffc.depth net levels id)
        (Mffc.cached_depth cache id))

(* ------------------------------------------------------------------ *)
(* BLIF round trip                                                     *)
(* ------------------------------------------------------------------ *)

let test_blif_roundtrip_functional () =
  let rng = Rng.create 23 in
  for _ = 1 to 10 do
    let net = random_net rng 4 15 in
    let text = Blif.to_string net in
    let net' = Blif.parse_string text in
    Alcotest.(check int) "pis" (N.num_pis net) (N.num_pis net');
    Alcotest.(check int) "pos" (N.num_pos net) (N.num_pos net');
    for m = 0 to 15 do
      let vec = Array.init 4 (fun i -> (m lsr i) land 1 = 1) in
      Alcotest.(check (array bool)) "functional" (N.eval_pos net vec)
        (N.eval_pos net' vec)
    done
  done

let test_blif_parse_handwritten () =
  let text =
    ".model test\n.inputs a b c\n.outputs f\n.names a b x\n11 1\n\
     .names x c f\n1- 1\n-1 1\n.end\n"
  in
  let net = Blif.parse_string text in
  Alcotest.(check int) "pis" 3 (N.num_pis net);
  (* f = (a & b) | c *)
  let check a b c expected =
    Alcotest.(check (array bool)) "f" [| expected |] (N.eval_pos net [| a; b; c |])
  in
  check true true false true;
  check false true false false;
  check false false true true

let test_blif_offset_cover () =
  (* Off-set rows (output 0). f = NOT(a). *)
  let text = ".model t\n.inputs a\n.outputs f\n.names a f\n1 0\n.end\n" in
  let net = Blif.parse_string text in
  Alcotest.(check (array bool)) "f(1)=0" [| false |] (N.eval_pos net [| true |]);
  Alcotest.(check (array bool)) "f(0)=1" [| true |] (N.eval_pos net [| false |])

let test_blif_const () =
  let text = ".model t\n.inputs a\n.outputs f g\n.names f\n1\n.names g\n.end\n" in
  let net = Blif.parse_string text in
  Alcotest.(check (array bool)) "consts" [| true; false |]
    (N.eval_pos net [| false |])

let test_blif_errors () =
  let bad s =
    match Blif.parse_string s with
    | exception Blif.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "undefined signal" true
    (bad ".model t\n.inputs a\n.outputs f\n.end\n");
  Alcotest.(check bool) "loop" true
    (bad ".model t\n.inputs a\n.outputs f\n.names f f\n1 1\n.end\n");
  Alcotest.(check bool) "latch" true (bad ".model t\n.latch a b\n.end\n")

(* ------------------------------------------------------------------ *)
(* BENCH round trip                                                    *)
(* ------------------------------------------------------------------ *)

let test_bench_roundtrip_functional () =
  let rng = Rng.create 29 in
  for _ = 1 to 10 do
    let net = random_net rng 4 15 in
    let net' = Bench.parse_string (Bench.to_string net) in
    for m = 0 to 15 do
      let vec = Array.init 4 (fun i -> (m lsr i) land 1 = 1) in
      Alcotest.(check (array bool)) "functional" (N.eval_pos net vec)
        (N.eval_pos net' vec)
    done
  done

let test_bench_parse_handwritten () =
  let text =
    "# comment\nINPUT(a)\nINPUT(b)\nOUTPUT(f)\nx = NAND(a, b)\nf = NOT(x)\n"
  in
  let net = Bench.parse_string text in
  (* f = a & b *)
  Alcotest.(check (array bool)) "11" [| true |] (N.eval_pos net [| true; true |]);
  Alcotest.(check (array bool)) "10" [| false |] (N.eval_pos net [| true; false |])

let test_bench_wide_gates () =
  let text =
    "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(f)\nf = XOR(a, b, c)\n"
  in
  let net = Bench.parse_string text in
  Alcotest.(check (array bool)) "parity 111" [| true |]
    (N.eval_pos net [| true; true; true |]);
  Alcotest.(check (array bool)) "parity 110" [| false |]
    (N.eval_pos net [| true; true; false |])

(* ------------------------------------------------------------------ *)
(* Stacking                                                            *)
(* ------------------------------------------------------------------ *)

let test_stack_identity () =
  let net, _ = small () in
  let s1 = Stack.stack net 1 in
  Alcotest.(check int) "same pis" (N.num_pis net) (N.num_pis s1);
  Alcotest.(check int) "same gates" (N.num_gates net) (N.num_gates s1);
  for m = 0 to 7 do
    let vec = Array.init 3 (fun i -> (m lsr i) land 1 = 1) in
    Alcotest.(check (array bool)) "same function" (N.eval_pos net vec)
      (N.eval_pos s1 vec)
  done

let test_stack_growth () =
  let net, _ = small () in
  let s3 = Stack.stack net 3 in
  Alcotest.(check int) "3x gates" (3 * N.num_gates net) (N.num_gates s3);
  Alcotest.(check bool) "deeper" true (Level.depth s3 > Level.depth net)

let test_stack_pi_padding () =
  (* small has 3 PIs and 2 POs: each next copy needs one extra PI. *)
  let net, _ = small () in
  let s2 = Stack.stack net 2 in
  Alcotest.(check int) "pi padding" (3 + 1) (N.num_pis s2);
  Alcotest.(check int) "pos" 2 (N.num_pos s2)

let test_stack_po_surplus () =
  (* A net with 1 PI and 2 POs: stacking exposes surplus POs. *)
  let net = N.create () in
  let a = N.add_pi net in
  let x = N.add_gate net tt_not [| a |] in
  N.add_po net x;
  N.add_po net a;
  let s2 = Stack.stack net 2 in
  (* copy1 surplus: 1 PO; copy2 (last): 2 POs -> total 3. *)
  Alcotest.(check int) "pos" 3 (N.num_pos s2);
  Alcotest.(check int) "pis" 1 (N.num_pis s2)

let () =
  Alcotest.run "network"
    [
      ( "network",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "kinds/names" `Quick test_kinds_and_names;
          Alcotest.test_case "fanouts" `Quick test_fanouts;
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "copy" `Quick test_copy_equivalent;
          Alcotest.test_case "validation" `Quick test_add_gate_validation;
        ] );
      ( "levels",
        [
          Alcotest.test_case "small" `Quick test_levels;
          Alcotest.test_case "monotone" `Quick test_levels_monotone;
        ] );
      ( "cones",
        [
          Alcotest.test_case "fanin cone" `Quick test_fanin_cone;
          Alcotest.test_case "order property" `Quick test_cone_order_property;
          Alcotest.test_case "fanout cone" `Quick test_fanout_cone;
          Alcotest.test_case "member mask" `Quick test_member_mask;
        ] );
      ( "mffc",
        [
          Alcotest.test_case "shared node excluded" `Quick
            test_mffc_shared_node_excluded;
          Alcotest.test_case "pi" `Quick test_mffc_pi;
          Alcotest.test_case "subset of cone" `Quick test_mffc_subset_of_cone;
          Alcotest.test_case "fanout closure" `Quick test_mffc_fanout_closure;
          Alcotest.test_case "depth formula" `Quick test_mffc_depth_figure4c;
          Alcotest.test_case "cache" `Quick test_mffc_cache_consistency;
        ] );
      ( "blif",
        [
          Alcotest.test_case "roundtrip" `Quick test_blif_roundtrip_functional;
          Alcotest.test_case "handwritten" `Quick test_blif_parse_handwritten;
          Alcotest.test_case "offset cover" `Quick test_blif_offset_cover;
          Alcotest.test_case "constants" `Quick test_blif_const;
          Alcotest.test_case "errors" `Quick test_blif_errors;
        ] );
      ( "bench",
        [
          Alcotest.test_case "roundtrip" `Quick test_bench_roundtrip_functional;
          Alcotest.test_case "handwritten" `Quick test_bench_parse_handwritten;
          Alcotest.test_case "wide gates" `Quick test_bench_wide_gates;
        ] );
      ( "stack",
        [
          Alcotest.test_case "identity" `Quick test_stack_identity;
          Alcotest.test_case "growth" `Quick test_stack_growth;
          Alcotest.test_case "pi padding" `Quick test_stack_pi_padding;
          Alcotest.test_case "po surplus" `Quick test_stack_po_surplus;
        ] );
    ]
