(* The concurrency sanitizer tier: seeded races the vector-clock
   detector must flag, clean patterns it must not, mutex-misuse and
   spawn/join-protocol diagnostics over synthetic traces, the trace file
   round-trip, and the no-false-positive sweep over real stacked batch
   and in-process serve runs.

   The seeded races are detected by happens-before, not by observed
   interleaving: two unsynchronized domains have no ordering edge, so
   the race is flagged deterministically even if the scheduler happens
   to run them back to back. *)

module Shared = Simgen_base.Shared
module Srcloc = Simgen_base.Srcloc
module Race = Simgen_check.Race_check
module D = Simgen_check.Diagnostic
module Runner = Simgen_runner
module Job = Runner.Job
module Pool = Runner.Pool
module Events = Runner.Events
module Manifest = Runner.Manifest
module Pattern_cache = Runner.Pattern_cache
module Fun_cache = Simgen_sweep.Fun_cache
module Protocol = Simgen_serve.Protocol
module Server = Simgen_serve.Server

(* Run [f] with recording armed over a clean trace; return the
   quiescent snapshot. *)
let recorded f =
  Shared.disarm ();
  Shared.reset_trace ();
  Shared.arm ();
  Fun.protect ~finally:(fun () -> Shared.disarm ()) f;
  let trace = Shared.snapshot () in
  Shared.reset_trace ();
  trace

let serious diags =
  List.filter (fun (d : D.t) -> d.D.severity <> D.Info) diags

let codes diags =
  List.sort_uniq compare (List.map (fun (d : D.t) -> d.D.code) diags)

let in_this_file (d : D.t) =
  match d.D.loc with
  | D.Src { Srcloc.file = Some f; _ } -> Filename.basename f = "test_race.ml"
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Seeded races                                                        *)
(* ------------------------------------------------------------------ *)

let test_unguarded_counter () =
  let trace =
    recorded (fun () ->
        let c =
          Shared.Cell.make ~loc:(Shared.here __POS__) "test.race.counter" 0
        in
        let bump () =
          for _ = 1 to 5 do
            Shared.Cell.incr ~at:(Shared.here __POS__) c
          done
        in
        let d1 = Shared.spawn bump in
        let d2 = Shared.spawn bump in
        Shared.join d1;
        Shared.join d2)
  in
  let bad = serious (Race.analyze trace) in
  Alcotest.(check bool) "unguarded increment flagged" true (bad <> []);
  List.iter
    (fun (d : D.t) ->
      Alcotest.(check bool)
        ("race code, got " ^ d.D.code)
        true
        (List.mem d.D.code [ "T001"; "T002" ]);
      Alcotest.(check bool)
        "location points into this test" true (in_this_file d))
    bad

let test_cache_insert_outside_mutex () =
  (* The pattern-cache discipline, violated: one domain mutates the
     "table" under its lock, the other inserts without taking it. *)
  let trace =
    recorded (fun () ->
        let loc = Shared.here __POS__ in
        let m = Shared.Mutex.create ~loc "test.race.cache-lock" in
        let table = Shared.Cell.make ~loc "test.race.cache-table" 0 in
        let locked_insert () =
          Shared.Mutex.with_lock m (fun () ->
              Shared.Cell.incr ~at:(Shared.here __POS__) table)
        in
        let rogue_insert () =
          Shared.Cell.incr ~at:(Shared.here __POS__) table
        in
        let d1 = Shared.spawn locked_insert in
        let d2 = Shared.spawn rogue_insert in
        Shared.join d1;
        Shared.join d2)
  in
  let bad = serious (Race.analyze trace) in
  Alcotest.(check bool) "insert outside mutex flagged" true (bad <> []);
  Alcotest.(check bool)
    "classified as inconsistent discipline (T003)" true
    (List.mem "T003" (codes bad))

let test_queue_pop_without_lock () =
  let trace =
    recorded (fun () ->
        let loc = Shared.here __POS__ in
        let qm = Shared.Mutex.create ~loc "test.race.queue-lock" in
        let depth = Shared.Cell.make ~loc "test.race.queue-depth" 0 in
        let producer () =
          for _ = 1 to 3 do
            Shared.Mutex.with_lock qm (fun () ->
                Shared.Cell.incr ~at:(Shared.here __POS__) depth)
          done
        in
        (* pops without taking the condition's mutex *)
        let consumer () =
          for _ = 1 to 3 do
            Shared.Cell.add ~at:(Shared.here __POS__) depth (-1)
          done
        in
        let d1 = Shared.spawn producer in
        let d2 = Shared.spawn consumer in
        Shared.join d1;
        Shared.join d2)
  in
  let bad = serious (Race.analyze trace) in
  Alcotest.(check bool) "unlocked pop flagged" true (bad <> []);
  Alcotest.(check bool)
    "guard named (T003)" true
    (List.mem "T003" (codes bad))

(* ------------------------------------------------------------------ *)
(* Clean patterns: no false positives                                  *)
(* ------------------------------------------------------------------ *)

let test_guarded_counter_clean () =
  let trace =
    recorded (fun () ->
        let loc = Shared.here __POS__ in
        let m = Shared.Mutex.create ~loc "test.clean.lock" in
        let c = Shared.Cell.make ~loc "test.clean.counter" 0 in
        let bump () =
          for _ = 1 to 5 do
            Shared.Mutex.with_lock m (fun () ->
                Shared.Cell.incr ~at:(Shared.here __POS__) c)
          done
        in
        let d1 = Shared.spawn bump in
        let d2 = Shared.spawn bump in
        Shared.join d1;
        Shared.join d2)
  in
  Alcotest.(check (list string))
    "guarded counter clean" [] (codes (serious (Race.analyze trace)))

let test_atomic_counter_clean () =
  let trace =
    recorded (fun () ->
        let a =
          Shared.Atomic.make ~loc:(Shared.here __POS__) "test.clean.atomic" 0
        in
        let bump () =
          for _ = 1 to 5 do
            Shared.Atomic.incr a
          done
        in
        let d1 = Shared.spawn bump in
        let d2 = Shared.spawn bump in
        Shared.join d1;
        Shared.join d2)
  in
  Alcotest.(check (list string))
    "atomic counter clean" [] (codes (serious (Race.analyze trace)))

let test_spawn_join_publication_clean () =
  (* Parent writes, child reads/writes, parent reads after join: every
     pair ordered by the spawn/join edges alone. *)
  let trace =
    recorded (fun () ->
        let c =
          Shared.Cell.make ~loc:(Shared.here __POS__) "test.clean.published" 0
        in
        Shared.Cell.set ~at:(Shared.here __POS__) c 1;
        let d =
          Shared.spawn (fun () ->
              let v = Shared.Cell.get ~at:(Shared.here __POS__) c in
              Shared.Cell.set ~at:(Shared.here __POS__) c (v + 1))
        in
        Shared.join d;
        ignore (Shared.Cell.get ~at:(Shared.here __POS__) c))
  in
  Alcotest.(check (list string))
    "spawn/join publication clean" [] (codes (serious (Race.analyze trace)))

let test_condition_handoff_clean () =
  (* Producer/consumer over a condition variable: the consumer's wait
     releases and re-acquires the mutex, so the producer's write is
     ordered before the consumer's read. *)
  let trace =
    recorded (fun () ->
        let loc = Shared.here __POS__ in
        let m = Shared.Mutex.create ~loc "test.clean.cond-lock" in
        let cond = Shared.Condition.create () in
        let slot = Shared.Cell.make ~loc "test.clean.cond-slot" None in
        let consumer =
          Shared.spawn (fun () ->
              Shared.Mutex.with_lock m (fun () ->
                  let rec wait () =
                    match Shared.Cell.get ~at:(Shared.here __POS__) slot with
                    | Some v -> v
                    | None ->
                        Shared.Condition.wait cond m;
                        wait ()
                  in
                  ignore (wait ())))
        in
        Shared.Mutex.with_lock m (fun () ->
            Shared.Cell.set ~at:(Shared.here __POS__) slot (Some 42);
            Shared.Condition.signal cond);
        Shared.join consumer)
  in
  Alcotest.(check (list string))
    "condition handoff clean" [] (codes (serious (Race.analyze trace)))

(* ------------------------------------------------------------------ *)
(* Mutex misuse and protocol diagnostics over synthetic traces         *)
(* ------------------------------------------------------------------ *)

let obj ?(kind = Shared.Kmutex) oid name =
  {
    Shared.oid;
    okind = kind;
    oname = name;
    oloc = Srcloc.make ~file:"synthetic.ml" ~line:oid ();
  }

let ev seq domain op o =
  { Shared.seq; domain; op; obj = o; at = Srcloc.none }

let analyze_events objects events =
  Race.analyze { Shared.objects; events }

let test_unlock_not_held () =
  let diags =
    analyze_events
      [ obj 0 "m" ]
      [ ev 0 0 Shared.Acquire 0; ev 1 0 Shared.Release 0;
        ev 2 0 Shared.Release 0 ]
  in
  Alcotest.(check (list string)) "double release" [ "T004" ] (codes diags)

let test_reacquire_by_holder () =
  let diags =
    analyze_events
      [ obj 0 "m" ]
      [ ev 0 0 Shared.Acquire 0; ev 1 0 Shared.Acquire 0 ]
  in
  Alcotest.(check bool)
    "self-deadlock flagged" true
    (List.mem "T005" (codes diags))

let test_held_at_end () =
  let diags =
    analyze_events [ obj 0 "m" ] [ ev 0 0 Shared.Acquire 0 ]
  in
  Alcotest.(check (list string)) "held at end" [ "T006" ] (codes diags)

let test_prearm_release_ignored () =
  (* A release on a mutex the trace never saw acquired is the pre-arm
     balance case, not a bug. *)
  let diags = analyze_events [ obj 0 "m" ] [ ev 0 0 Shared.Release 0 ] in
  Alcotest.(check (list string)) "pre-arm release ignored" [] (codes diags)

let test_spawn_protocol_violations () =
  let tok = obj ~kind:Shared.Ktoken 0 "domain" in
  let begin_only =
    analyze_events [ tok ] [ ev 0 1 Shared.Begin 0 ]
  in
  Alcotest.(check (list string))
    "begin without spawn" [ "T007" ] (codes begin_only);
  let join_only = analyze_events [ tok ] [ ev 0 0 Shared.Join 0 ] in
  Alcotest.(check (list string))
    "join without end" [ "T007" ] (codes join_only)

(* ------------------------------------------------------------------ *)
(* Trace persistence                                                   *)
(* ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "simgen-tsan" ".trace" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let diag_key (d : D.t) = (d.D.code, d.D.severity, d.D.message)

let test_trace_round_trip () =
  let trace =
    recorded (fun () ->
        let loc = Shared.here __POS__ in
        let m = Shared.Mutex.create ~loc "test.rt.lock" in
        let c = Shared.Cell.make ~loc "test.rt.cell" 0 in
        let guarded () =
          Shared.Mutex.with_lock m (fun () ->
              Shared.Cell.incr ~at:(Shared.here __POS__) c)
        in
        let rogue () = Shared.Cell.incr ~at:(Shared.here __POS__) c in
        let d1 = Shared.spawn guarded in
        let d2 = Shared.spawn rogue in
        Shared.join d1;
        Shared.join d2)
  in
  let direct = Race.analyze trace in
  Alcotest.(check bool) "seeded race present" true (serious direct <> []);
  with_temp_file (fun path ->
      Shared.write_trace trace path;
      match Race.file path with
      | Error msg -> Alcotest.fail ("round-trip parse failed: " ^ msg)
      | Ok replayed ->
          Alcotest.(check int)
            "same diagnostic count" (List.length direct)
            (List.length replayed);
          List.iter2
            (fun a b ->
              Alcotest.(check bool)
                ("identical diagnostic: " ^ a.D.message)
                true
                (diag_key a = diag_key b))
            direct replayed)

let test_corrupt_trace_degrades () =
  let trace =
    recorded (fun () ->
        let c =
          Shared.Cell.make ~loc:(Shared.here __POS__) "test.corrupt.cell" 0
        in
        Shared.Cell.set ~at:(Shared.here __POS__) c 1)
  in
  with_temp_file (fun path ->
      Shared.write_trace trace path;
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "e not-a-number 0 wr 0 - 0\n";
      output_string oc "utter garbage\n";
      close_out oc;
      match Race.file path with
      | Error msg -> Alcotest.fail ("corrupt lines must not be fatal: " ^ msg)
      | Ok diags ->
          let parse_diags =
            List.filter (fun (d : D.t) -> d.D.code = "P001") diags
          in
          Alcotest.(check int) "one P001 per corrupt line" 2
            (List.length parse_diags);
          List.iter
            (fun (d : D.t) ->
              match d.D.loc with
              | D.Src { Srcloc.file = Some f; line = Some l } ->
                  Alcotest.(check string) "located in the trace file" path f;
                  Alcotest.(check bool) "past the valid lines" true (l >= 2)
              | _ -> Alcotest.fail "P001 must carry a file:line location")
            parse_diags;
          Alcotest.(check int) "parse findings force exit 1" 1
            (Race.exit_code diags))

let test_bad_header_is_error () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "not a trace\n";
      close_out oc;
      match Race.file path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "foreign header must be a hard error")

let test_exit_codes () =
  Alcotest.(check int) "empty is clean" 0 (Race.exit_code []);
  Alcotest.(check int) "info-only is clean" 0
    (Race.exit_code [ D.info "T008" "note" ]);
  Alcotest.(check int) "warnings exit 1" 1
    (Race.exit_code [ D.warn "T006" "held" ]);
  Alcotest.(check int) "errors exit 1" 1
    (Race.exit_code [ D.error "T001" "race" ])

(* ------------------------------------------------------------------ *)
(* No-false-positive sweep: real stacked batch + in-process serve      *)
(* ------------------------------------------------------------------ *)

let test_stacked_batch_race_clean () =
  let jobs =
    Manifest.parse_lines
      (List.concat_map
         (fun seed ->
           [ Printf.sprintf "cec dec dec stacked=true seed=%d" seed ])
         [ 1; 2; 3 ])
  in
  let cache = Pattern_cache.create () in
  let sink, _events = Events.memory () in
  let trace =
    recorded (fun () ->
        let report = Pool.run ~workers:3 ~events:sink ~cache jobs in
        Array.iter
          (fun (r : Job.result) ->
            match r.Job.status with
            | Job.Equivalent -> ()
            | s ->
                Alcotest.failf "job %s not equivalent: %s" r.Job.spec.Job.label
                  (Job.status_to_string s))
          report.Pool.results)
  in
  Alcotest.(check bool) "events recorded" true (trace.Shared.events <> []);
  Alcotest.(check (list string))
    "stacked batch race-clean across 3 seeds" []
    (codes (serious (Race.analyze trace)))

let test_serve_race_clean () =
  let server =
    Server.create ~workers:1 ~fun_cache:(Fun_cache.create ())
      ~pattern_cache:(Pattern_cache.create ()) ()
  in
  let trace =
    recorded (fun () ->
        List.iter
          (fun seed ->
            let args = Printf.sprintf "dec dec seed=%d" seed in
            match Server.handle server (Protocol.Job { cmd = "cec"; args; deadline_ms = None }) with
            | Protocol.Result _ -> ()
            | Protocol.Failed msg -> Alcotest.fail ("serve job failed: " ^ msg)
            | Protocol.Event _ -> Alcotest.fail "unexpected event frame"
            | Protocol.Overloaded _ -> Alcotest.fail "unexpected overload frame")
          [ 1; 2; 3 ];
        match Server.handle server Protocol.Stats with
        | Protocol.Result _ -> ()
        | Protocol.Failed msg -> Alcotest.fail ("stats failed: " ^ msg)
        | Protocol.Event _ -> Alcotest.fail "unexpected event frame"
            | Protocol.Overloaded _ -> Alcotest.fail "unexpected overload frame")
  in
  Alcotest.(check bool) "events recorded" true (trace.Shared.events <> []);
  Alcotest.(check (list string))
    "in-process serve race-clean" []
    (codes (serious (Race.analyze trace)))

let () =
  Alcotest.run "simgen-race"
    [
      ( "seeded",
        [
          Alcotest.test_case "unguarded counter" `Quick test_unguarded_counter;
          Alcotest.test_case "cache insert outside mutex" `Quick
            test_cache_insert_outside_mutex;
          Alcotest.test_case "queue pop without lock" `Quick
            test_queue_pop_without_lock;
        ] );
      ( "clean",
        [
          Alcotest.test_case "guarded counter" `Quick
            test_guarded_counter_clean;
          Alcotest.test_case "atomic counter" `Quick test_atomic_counter_clean;
          Alcotest.test_case "spawn/join publication" `Quick
            test_spawn_join_publication_clean;
          Alcotest.test_case "condition handoff" `Quick
            test_condition_handoff_clean;
        ] );
      ( "mutex",
        [
          Alcotest.test_case "unlock not held" `Quick test_unlock_not_held;
          Alcotest.test_case "re-acquire by holder" `Quick
            test_reacquire_by_holder;
          Alcotest.test_case "held at end" `Quick test_held_at_end;
          Alcotest.test_case "pre-arm release" `Quick
            test_prearm_release_ignored;
          Alcotest.test_case "spawn protocol" `Quick
            test_spawn_protocol_violations;
        ] );
      ( "trace",
        [
          Alcotest.test_case "round trip" `Quick test_trace_round_trip;
          Alcotest.test_case "corrupt lines degrade" `Quick
            test_corrupt_trace_degrades;
          Alcotest.test_case "bad header" `Quick test_bad_header_is_error;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "stacked batch clean" `Slow
            test_stacked_batch_race_clean;
          Alcotest.test_case "serve clean" `Quick test_serve_race_clean;
        ] );
    ]
