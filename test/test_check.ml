(* The static linter and invariant-audit layer: every seeded corruption
   must surface its documented diagnostic code, the clean benchmark suites
   must lint error-free, and the runtime audits must catch a corrupted
   sweeper merge. *)

module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Blif = Simgen_network.Blif
module Aig = Simgen_aig.Aig
module L = Simgen_sat.Literal
module Dimacs = Simgen_sat.Dimacs
module Tseitin = Simgen_sat.Tseitin
module Solver = Simgen_sat.Solver
module Bdd = Simgen_bdd.Bdd
module Suite = Simgen_benchgen.Suite
module Sweeper = Simgen_sweep.Sweeper
module Runtime_check = Simgen_base.Runtime_check
module Srcloc = Simgen_base.Srcloc
module Check = Simgen_check
module Sweep_options = Simgen_sweep.Sweep_options

let opts seed = { Sweep_options.default with Sweep_options.seed }
module D = Simgen_check.Diagnostic

let codes diags = List.sort_uniq compare (List.map (fun d -> d.D.code) diags)

let has_code code diags = List.exists (fun d -> d.D.code = code) diags

let check_code what code diags =
  Alcotest.(check bool)
    (Printf.sprintf "%s reports %s (got %s)" what code
       (String.concat "," (codes diags)))
    true (has_code code diags)

let errors diags = List.filter (fun d -> d.D.severity = D.Error) diags
let warnings diags = List.filter (fun d -> d.D.severity = D.Warning) diags

(* A small well-formed network: two PIs, three gates, one PO. *)
let clean_net () =
  let net = N.create ~name:"clean" () in
  let a = N.add_pi net and b = N.add_pi net in
  let g1 = N.add_gate net (TT.of_bits 2 0b1000L) [| a; b |] in
  let g2 = N.add_gate net (TT.of_bits 2 0b0110L) [| a; b |] in
  let g3 = N.add_gate net (TT.of_bits 2 0b0111L) [| g1; g2 |] in
  N.add_po net g3;
  net

(* ------------------------------------------------------------------ *)
(* Network lints: seeded corruption -> expected code                   *)
(* ------------------------------------------------------------------ *)

let test_clean_network () =
  let diags = Check.Lint.network (clean_net ()) in
  Alcotest.(check int) "no errors" 0 (List.length (errors diags));
  Alcotest.(check int) "no warnings" 0 (List.length (warnings diags))

let test_cycle () =
  let net = clean_net () in
  (* g1 (id 2) <- g3 (id 4) closes a loop g3 -> g1 -> g3. *)
  N.Unsafe.set_fanins net 2 [| 4; 1 |];
  let diags = Check.Lint.network net in
  check_code "cycle" "N001" diags

let test_arity_mismatch () =
  let net = clean_net () in
  N.Unsafe.set_fanins net 4 [| 2 |];
  (* 2-var table, 1 fanin *)
  check_code "arity" "N002" (Check.Lint.network net)

let test_forward_and_range () =
  let net = clean_net () in
  N.Unsafe.set_fanins net 2 [| 3; 99 |] (* forward ref + out of range *);
  let diags = Check.Lint.network net in
  check_code "forward/range" "N003" diags;
  Alcotest.(check bool)
    "both fanins flagged" true
    (List.length (List.filter (fun d -> d.D.code = "N003") diags) >= 2)

let test_unreachable () =
  let net = clean_net () in
  (* Another gate nothing observes. *)
  let _orphan = N.add_gate net (TT.of_bits 2 0b0001L) [| 0; 1 |] in
  check_code "unreachable" "N004" (Check.Lint.network net)

let test_duplicate_names () =
  let net = N.create () in
  let a = N.add_pi net and b = N.add_pi net in
  let g1 = N.add_gate ~name:"sig" net (TT.of_bits 2 0b1000L) [| a; b |] in
  let g2 = N.add_gate ~name:"sig" net (TT.of_bits 2 0b1110L) [| a; b |] in
  N.add_po net g1;
  N.add_po net g2;
  check_code "duplicate name" "N006" (Check.Lint.network net)

let test_constant_foldable () =
  let net = clean_net () in
  let c = N.add_gate net (TT.create_const 2 true) [| 0; 1 |] in
  N.add_po net c;
  check_code "const gate" "N008" (Check.Lint.network net)

let test_buffer () =
  let net = clean_net () in
  let buf = N.add_gate net (TT.var 0 1) [| 2 |] in
  N.add_po net buf;
  check_code "buffer" "N009" (Check.Lint.network net)

let test_stale_levels () =
  let net = clean_net () in
  ignore (N.levels net);
  (* Pretend a mutator forgot to invalidate: install garbage. *)
  N.Unsafe.set_level_cache net (Array.make (N.num_nodes net) 7);
  let diags = Check.Lint.network net in
  check_code "stale levels" "N010" diags;
  Alcotest.(check bool) "is an error" true (errors diags <> [])

let test_levels_recomputed_after_mutation () =
  (* The by-construction guarantee behind N010: every mutator invalidates
     the cache, so an honest network never lints stale. *)
  let net = clean_net () in
  ignore (N.levels net);
  N.Unsafe.set_fanins net 4 [| 2; 2 |];
  Alcotest.(check bool) "cache dropped" true (N.cached_levels net = None);
  Alcotest.(check bool)
    "no N010 after recompute"
    true
    (not (has_code "N010" (Check.Lint.network net)))

let test_ignored_and_duplicate_fanin () =
  let net = N.create () in
  let a = N.add_pi net and b = N.add_pi net in
  (* Function is just var 0: fanin 1 ignored. *)
  let g1 = N.add_gate net (TT.var 0 2) [| a; b |] in
  let g2 = N.add_gate net (TT.of_bits 2 0b1000L) [| a; a |] in
  N.add_po net g1;
  N.add_po net g2;
  let diags = Check.Lint.network net in
  check_code "ignored fanin" "N012" diags;
  check_code "duplicate fanin" "N013" diags

(* ------------------------------------------------------------------ *)
(* AIG lints                                                           *)
(* ------------------------------------------------------------------ *)

let clean_aig () =
  let aig = Aig.create () in
  let a = Aig.add_pi aig and b = Aig.add_pi aig in
  let x = Aig.and_ aig a b in
  Aig.add_po aig x;
  (aig, a, b, x)

let test_aig_clean () =
  let aig, _, _, _ = clean_aig () in
  Alcotest.(check (list string)) "no diagnostics" [] (codes (Check.Lint.aig aig))

let test_aig_non_canonical () =
  let aig, a, b, _ = clean_aig () in
  Aig.add_po aig (Aig.Unsafe.push_and aig b a) (* b > a: wrong order *);
  check_code "operand order" "A001" (Check.Lint.aig aig)

let test_aig_duplicate () =
  let aig, a, b, _ = clean_aig () in
  Aig.add_po aig (Aig.Unsafe.push_and aig a b) (* same pair again *);
  check_code "strash duplicate" "A002" (Check.Lint.aig aig)

let test_aig_foldable () =
  let aig, a, _, _ = clean_aig () in
  Aig.add_po aig (Aig.Unsafe.push_and aig Aig.true_ a);
  check_code "constant operand" "A003" (Check.Lint.aig aig)

let test_aig_forward_fanin () =
  let aig, a, _, _ = clean_aig () in
  let n = Aig.num_nodes aig in
  (* References itself (node id n = the node being pushed). *)
  Aig.add_po aig (Aig.Unsafe.push_and aig a (Aig.lit_of_node n false));
  let diags = Check.Lint.aig aig in
  check_code "forward fanin" "A004" diags;
  Alcotest.(check bool) "is an error" true (errors diags <> [])

let test_aig_unreachable () =
  let aig, a, b, _ = clean_aig () in
  ignore (Aig.and_ aig (Aig.not_ a) (Aig.not_ b)) (* never made a PO *);
  check_code "unreachable AND" "A005" (Check.Lint.aig aig)

let test_aig_po_range () =
  let aig, _, _, _ = clean_aig () in
  Aig.add_po aig (Aig.lit_of_node 500 false);
  let diags = Check.Lint.aig aig in
  check_code "PO out of range" "A006" diags;
  Alcotest.(check bool) "is an error" true (errors diags <> [])

(* ------------------------------------------------------------------ *)
(* CNF lints                                                           *)
(* ------------------------------------------------------------------ *)

let test_cnf_codes () =
  let clauses =
    [
      [ L.pos 0; L.neg 1 ];
      [ L.pos 9 ] (* C001: 9 out of range *);
      [] (* C002: empty *);
      [ L.pos 2; L.neg 2 ] (* C003: tautology *);
      [ L.pos 0; L.pos 0 ] (* C004: duplicate literal *);
      [ L.neg 1; L.pos 0 ] (* C005: duplicate of clause 0 *);
      (* variable 3 declared but never referenced: C006 *)
    ]
  in
  let diags = Check.Lint.cnf ~nvars:4 clauses in
  List.iter
    (fun code -> check_code "cnf" code diags)
    [ "C001"; "C002"; "C003"; "C004"; "C005"; "C006" ];
  Alcotest.(check int) "one error (C001)" 1 (List.length (errors diags))

let test_cnf_clean () =
  let clauses = [ [ L.pos 0; L.neg 1 ]; [ L.pos 1; L.pos 2 ]; [ L.neg 2 ] ] in
  Alcotest.(check (list string))
    "clean cnf" []
    (codes (Check.Lint.cnf ~nvars:3 clauses))

let test_tseitin_encoding_lint () =
  (* The live encoder must emit well-formed CNF for a real benchmark. No
     errors or warnings; info-level C007 is a true finding here — cones
     over dec's constant node yield unit clauses that subsume later
     truth-table rows (wasted clauses, not wrong ones). *)
  let net = Suite.lut_network "dec" in
  let diags = Check.Lint.tseitin_encoding net in
  Alcotest.(check int) "no errors" 0 (List.length (errors diags));
  Alcotest.(check int) "no warnings" 0 (List.length (warnings diags));
  Alcotest.(check bool) "only C007 infos beyond that" true
    (List.for_all (fun d -> d.D.code = "C007") diags)

(* ------------------------------------------------------------------ *)
(* Parse errors as diagnostics                                         *)
(* ------------------------------------------------------------------ *)

let write_temp ext content =
  let path = Filename.temp_file "simgen_check" ext in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let test_parse_error_located () =
  let path =
    write_temp ".blif" ".model broken\n.inputs a\n.outputs y\nnot a cover row\n.end\n"
  in
  let diags = Check.Lint.file path in
  check_code "parse error" "P001" diags;
  (match diags with
   | [ { D.loc = D.Src { Simgen_base.Srcloc.file = Some f; line = Some n }; _ } ] ->
       Alcotest.(check string) "file recorded" path f;
       Alcotest.(check int) "line recorded" 4 n
   | _ -> Alcotest.fail "expected a single located P001");
  Sys.remove path

let test_unknown_extension () =
  let path = write_temp ".xyz" "nonsense" in
  check_code "unknown kind" "P002" (Check.Lint.file path);
  Sys.remove path

let test_file_dispatch_clean () =
  (* Round-trip a generated benchmark through each format and lint the
     file: no errors anywhere. *)
  let net = Suite.lut_network "alu4" in
  let blif = Filename.temp_file "simgen_check" ".blif" in
  Simgen_network.Blif.write_file blif net;
  let diags = Check.Lint.file blif in
  Alcotest.(check int) "blif file lints clean" 0 (List.length (errors diags));
  Sys.remove blif;
  let aag = Filename.temp_file "simgen_check" ".aag" in
  Simgen_aig.Aiger.write_file aag (Suite.aig "dec");
  let diags = Check.Lint.file aag in
  Alcotest.(check int) "aag file lints clean" 0 (List.length (errors diags));
  Sys.remove aag

(* ------------------------------------------------------------------ *)
(* No-false-positive sweep over the suites                             *)
(* ------------------------------------------------------------------ *)

let test_suites_error_free () =
  List.iter
    (fun name ->
      let aig_errs = errors (Check.Lint.aig (Suite.aig name)) in
      Alcotest.(check int) (name ^ " aig errors") 0 (List.length aig_errs);
      let net = Suite.lut_network name in
      let diags = Check.Lint.network net in
      Alcotest.(check int) (name ^ " net errors") 0 (List.length (errors diags));
      Alcotest.(check int)
        (name ^ " net warnings")
        0
        (List.length (warnings diags)))
    Suite.names

let test_stacked_and_seeds_error_free () =
  (* The stacked (putontop) variants plus random LUT networks from three
     seeds: levels prewarmed by stacking must never lint stale. *)
  List.iter
    (fun name ->
      let net = Suite.stacked_lut_network name in
      let diags = Check.Lint.network net in
      Alcotest.(check int)
        (name ^ " stacked errors")
        0
        (List.length (errors diags)))
    [ "apex2"; "dec" ];
  List.iter
    (fun seed ->
      let rng = Simgen_base.Rng.create seed in
      let net = N.create () in
      let ids = ref [] in
      for _ = 1 to 4 do
        ids := N.add_pi net :: !ids
      done;
      for _ = 1 to 40 do
        let pool = Array.of_list !ids in
        let k = 1 + Simgen_base.Rng.int rng 3 in
        let fanins =
          Array.init k (fun _ ->
              pool.(Simgen_base.Rng.int rng (Array.length pool)))
        in
        let f = TT.random rng k in
        ids := N.add_gate net f fanins :: !ids
      done;
      N.add_po net (List.hd !ids);
      let diags = Check.Lint.network net in
      Alcotest.(check int)
        (Printf.sprintf "seed %d errors" seed)
        0
        (List.length (errors diags)))
    [ 3; 17; 99 ]

(* ------------------------------------------------------------------ *)
(* Runtime audits                                                      *)
(* ------------------------------------------------------------------ *)

let violation f =
  try
    f ();
    None
  with Runtime_check.Violation msg -> Some msg

let test_audit_passes_on_honest_sweep () =
  Runtime_check.with_enabled true (fun () ->
      let net = Suite.lut_network "alu4" in
      let sw = Sweeper.create ~check:true (opts 5) net in
      Sweeper.random_round sw;
      let _stats =
        Sweeper.sat_sweep
          { (opts 5) with Sweep_options.max_sat_calls = Some 25 }
          sw
      in
      (* Audits ran at every boundary without raising. *)
      Alcotest.(check bool) "merges happened or nothing to merge" true
        (Sweeper.cost sw >= 0))

let test_audit_catches_broken_merge () =
  let net = Suite.lut_network "alu4" in
  let sw = Sweeper.create ~check:true (opts 5) net in
  Sweeper.random_round sw;
  (* An "upward" merge is never a proven equivalence: representatives must
     only ever move to smaller ids. *)
  let subst = Sweeper.substitution sw in
  let n = Array.length subst in
  subst.(n - 2) <- n - 1;
  match violation (fun () -> Sweeper.random_round sw) with
  | Some msg ->
      Alcotest.(check bool)
        ("R003 in: " ^ msg)
        true
        (String.length msg >= 4 && String.sub msg 0 4 = "R003")
  | None -> Alcotest.fail "corrupted substitution went undetected"

let test_audit_off_by_default () =
  Runtime_check.set_enabled false;
  let net = Suite.lut_network "alu4" in
  let sw = Sweeper.create Sweep_options.default net in
  Sweeper.random_round sw;
  let subst = Sweeper.substitution sw in
  let n = Array.length subst in
  subst.(n - 2) <- n - 1;
  (* With audits off the corruption goes unnoticed (that is the deal). *)
  Alcotest.(check bool) "no raise" true
    (violation (fun () -> Sweeper.random_round sw) = None);
  subst.(n - 2) <- n - 2

let test_eq_partition_audit_positive () =
  Runtime_check.with_enabled true (fun () ->
      let net = Suite.lut_network "dec" in
      let eq = Simgen_sim.Eq_classes.create net in
      let rng = Simgen_base.Rng.create 11 in
      let words = Simgen_sim.Simulator.random_word rng net in
      Simgen_sim.Eq_classes.refine_word eq
        (Simgen_sim.Simulator.simulate_word net words);
      Check.Audit.eq_partition eq net)

let test_assignment_audit () =
  Runtime_check.with_enabled true (fun () ->
      let a = Simgen_core.Assignment.create 8 in
      Simgen_core.Assignment.assign a 3 true;
      Simgen_core.Assignment.assign a 5 false;
      Simgen_core.Assignment.audit a;
      let mark = Simgen_core.Assignment.checkpoint a in
      Simgen_core.Assignment.rollback a mark;
      Simgen_core.Assignment.audit a;
      (* A mark from the future is a caller bug the audit must flag. *)
      match
        violation (fun () -> Simgen_core.Assignment.rollback a (mark + 5))
      with
      | Some msg ->
          Alcotest.(check bool)
            ("R006 in: " ^ msg)
            true
            (String.length msg >= 4 && String.sub msg 0 4 = "R006")
      | None -> Alcotest.fail "bogus rollback mark went undetected")

let test_session_audits_during_cec () =
  (* R004/R005 run inside check_pair; an honest CEC must pass them all. *)
  Runtime_check.with_enabled true (fun () ->
      let net = Suite.lut_network "dec" in
      let report = Simgen_sweep.Cec.check Sweep_options.default net (N.copy net) in
      Alcotest.(check bool)
        "equivalent to itself" true
        (report.Simgen_sweep.Cec.outcome = Simgen_sweep.Cec.Equivalent))

(* ------------------------------------------------------------------ *)
(* Runner integration: pre-flight lint                                 *)
(* ------------------------------------------------------------------ *)

let test_runner_rejects_corrupt_input () =
  let net = clean_net () in
  N.Unsafe.set_fanins net 2 [| 4; 1 |] (* cycle *);
  let sink, collect = Simgen_runner.Events.memory () in
  let spec =
    Simgen_runner.Job.make ~id:0 (Simgen_runner.Job.Sweep (Simgen_runner.Job.Inline net))
  in
  let r = Simgen_runner.Exec.run ~events:sink ~worker:0 spec in
  (match r.Simgen_runner.Job.status with
   | Simgen_runner.Job.Failed { message; _ } ->
       Alcotest.(check bool) ("mentions N001: " ^ message) true
         (String.length message > 0)
   | _ -> Alcotest.fail "corrupt input did not fail the job");
  let events = collect () in
  Alcotest.(check bool) "lint event emitted" true
    (List.exists
       (fun e ->
         match e.Simgen_runner.Events.payload with
         | Simgen_runner.Events.Lint { errors; _ } -> errors > 0
         | _ -> false)
       events)

let test_runner_lints_clean_input () =
  let sink, collect = Simgen_runner.Events.memory () in
  let spec =
    Simgen_runner.Job.make ~id:0
      (Simgen_runner.Job.Sweep (Simgen_runner.Job.Inline (clean_net ())))
  in
  let r = Simgen_runner.Exec.run ~events:sink ~worker:0 spec in
  Alcotest.(check bool) "job swept" true
    (r.Simgen_runner.Job.status = Simgen_runner.Job.Swept);
  Alcotest.(check bool) "clean lint event" true
    (List.exists
       (fun e ->
         match e.Simgen_runner.Events.payload with
         | Simgen_runner.Events.Lint { errors = 0; warnings = 0; _ } -> true
         | _ -> false)
       (collect ()))

(* ------------------------------------------------------------------ *)
(* C007/C008: subsumption and complementary units                      *)
(* ------------------------------------------------------------------ *)

let test_cnf_subsumed () =
  let clauses =
    [
      [ L.pos 0 ];
      [ L.pos 0; L.neg 1 ] (* C007: subsumed by clause 0 *);
      [ L.neg 1; L.pos 2 ] (* shares ~x1 but is not subsumed *);
    ]
  in
  let diags = Check.Lint.cnf ~nvars:3 clauses in
  check_code "subsumption" "C007" diags;
  Alcotest.(check int) "exactly one C007" 1
    (List.length (List.filter (fun d -> d.D.code = "C007") diags));
  (* Exact duplicates stay C005, never C007. *)
  let dup = [ [ L.pos 0; L.neg 1 ]; [ L.neg 1; L.pos 0 ] ] in
  let diags = Check.Lint.cnf ~nvars:2 dup in
  check_code "duplicate" "C005" diags;
  Alcotest.(check bool) "no C007 on exact duplicate" false
    (has_code "C007" diags)

let test_cnf_complementary_units () =
  let clauses = [ [ L.pos 0; L.pos 1 ]; [ L.pos 2 ]; [ L.neg 2 ] ] in
  let diags = Check.Lint.cnf ~nvars:3 clauses in
  check_code "complementary units" "C008" diags;
  (* Repeating the same unit is C005 territory, not C008. *)
  let same = [ [ L.pos 0 ]; [ L.pos 0 ] ] in
  Alcotest.(check bool) "same-polarity units are not C008" false
    (has_code "C008" (Check.Lint.cnf ~nvars:1 same))

(* ------------------------------------------------------------------ *)
(* Semantic lints: seeded corruption -> expected S-code                *)
(* ------------------------------------------------------------------ *)

let tt_and = TT.of_bits 2 0b1000L
let tt_xor = TT.of_bits 2 0b0110L
let tt_xnor = TT.of_bits 2 0b1001L
let tt_nand = TT.of_bits 2 0b0111L
let tt_inv = TT.of_bits 1 0b01L

(* Shared scaffold: three PIs and two independent, non-constant gates.
   Semantically clean — the corruptions below each add the one defect
   their S-code must catch. *)
let sem_base () =
  let net = N.create ~name:"sem" () in
  let a = N.add_pi net and b = N.add_pi net and c = N.add_pi net in
  let g_and = N.add_gate net tt_and [| a; b |] in
  let g_xor = N.add_gate net tt_xor [| b; c |] in
  N.add_po net g_and;
  N.add_po net g_xor;
  (net, a, b, c, g_and, g_xor)

(* Each corruption returns the network and the S-code it must trigger.
   Together they cover every proved code (9 distinct corruption kinds). *)
let corruptions =
  [
    ( "const-true gate",
      "S001",
      fun () ->
        let net, a, b, _, g_and, _ = sem_base () in
        let dup = N.add_gate net tt_and [| a; b |] in
        let x = N.add_gate net tt_xnor [| g_and; dup |] in
        N.add_po net x;
        net );
    ( "const-false gate",
      "S001",
      fun () ->
        let net, a, b, _, g_and, _ = sem_base () in
        let dup = N.add_gate net tt_and [| a; b |] in
        let x = N.add_gate net tt_xor [| g_and; dup |] in
        N.add_po net x;
        net );
    ( "duplicated gate",
      "S003",
      fun () ->
        let net, a, b, _, _, _ = sem_base () in
        let dup = N.add_gate net tt_and [| a; b |] in
        N.add_po net dup;
        net );
    ( "complement-duplicated gate",
      "S004",
      fun () ->
        let net, a, b, _, _, _ = sem_base () in
        let nand = N.add_gate net tt_nand [| a; b |] in
        N.add_po net nand;
        net );
    ( "PO tied to the same node",
      "S005",
      fun () ->
        let net, _, _, _, g_and, _ = sem_base () in
        N.add_po net g_and;
        net );
    ( "POs driven by duplicate gates",
      "S005",
      fun () ->
        let net, a, b, _, _, _ = sem_base () in
        let dup = N.add_gate net tt_and [| a; b |] in
        N.add_po net dup;
        net );
    ( "complementary POs",
      "S006",
      fun () ->
        let net, _, _, _, g_and, _ = sem_base () in
        let inv = N.add_gate net tt_inv [| g_and |] in
        N.add_po net inv;
        net );
    ( "redundant mux select",
      "S002",
      fun () ->
        let net, a, b, c, g_and, _ = sem_base () in
        let dup = N.add_gate net tt_and [| a; b |] in
        (* x2 ? (x0 | x1) : (x0 & x1) over equivalent x0/x1: the select
           only matters when the data inputs differ, which they never
           do. *)
        let mux = N.add_gate net (TT.of_bits 3 0b11101000L) [| g_and; dup; c |] in
        N.add_po net mux;
        net );
    ( "dead gate behind a constant mask",
      "S007",
      fun () ->
        let net, a, b, c, g_and, _ = sem_base () in
        let dup = N.add_gate net tt_and [| a; b |] in
        let dead = N.add_gate net tt_xor [| b; c |] in
        (* x0 & (x1 ^ x2) with x1 == x2: always 0, so [dead] is
           unobservable. *)
        let masked =
          N.add_gate net (TT.of_bits 3 0b00101000L) [| dead; g_and; dup |]
        in
        N.add_po net masked;
        net );
  ]

let test_sem_corruptions () =
  List.iter
    (fun (what, code, build) ->
      List.iter
        (fun seed ->
          let diags = Check.Lint.semantic ~seed (build ()) in
          check_code (Printf.sprintf "%s (seed %d)" what seed) code diags)
        [ 1; 2; 3 ])
    corruptions

let test_sem_clean () =
  (* The uncorrupted scaffold has no semantic defects: no S-code at all,
     under any prefilter seed. *)
  List.iter
    (fun seed ->
      let net, _, _, _, _, _ = sem_base () in
      let diags = Check.Lint.semantic ~seed net in
      Alcotest.(check (list string))
        (Printf.sprintf "clean scaffold (seed %d)" seed)
        [] (codes diags))
    [ 1; 2; 3 ]

(* Independent verification of findings on a real benchmark: every
   equivalence/constancy the lint claims must also hold in the BDD
   engine (which shares no code with the SAT path). Clean suites contain
   true equivalences, so "no false positives" means "every finding
   re-proves", not "no findings". *)
let test_sem_no_false_positives () =
  let net = Suite.lut_network "dec" in
  let m = Bdd.manager ~max_nodes:200_000 (N.num_pis net) in
  let roots = Bdd.build_network m net in
  let pos = N.pos net in
  let verify (d : D.t) =
    let node_of = function
      | D.Node id -> id
      | _ -> Alcotest.fail (D.to_string d ^ ": expected a node location")
    in
    match d.D.code with
    | "S001" ->
        let id = node_of d.D.loc in
        Alcotest.(check bool)
          (D.to_string d ^ ": BDD agrees constant")
          true
          (Bdd.is_zero m roots.(id) || Bdd.is_one m roots.(id))
    | "S003" | "S004" ->
        let id = node_of d.D.loc in
        let rep =
          try Scanf.sscanf d.D.message "gate %d is provably equivalent to node %d"
                (fun _ r -> r)
          with Scanf.Scan_failure _ | End_of_file ->
            Scanf.sscanf d.D.message
              "gate %d is provably the complement of node %d" (fun _ r -> r)
        in
        let rhs =
          if d.D.code = "S003" then roots.(rep) else Bdd.not_ m roots.(rep)
        in
        Alcotest.(check bool)
          (D.to_string d ^ ": BDD agrees")
          true
          (Bdd.equal roots.(id) rhs)
    | "S005" | "S006" -> (
        match d.D.loc with
        | D.Named _ ->
            (try
               Scanf.sscanf d.D.message "PO %d is provably equal to PO %d"
                 (fun j i ->
                   Alcotest.(check bool)
                     (D.to_string d ^ ": BDD agrees")
                     true
                     (Bdd.equal roots.(pos.(j)) roots.(pos.(i))))
             with Scanf.Scan_failure _ | End_of_file -> (
               try
                 Scanf.sscanf d.D.message
                   "PO %d is provably the complement of PO %d" (fun j i ->
                     Alcotest.(check bool)
                       (D.to_string d ^ ": BDD agrees")
                       true
                       (Bdd.equal roots.(pos.(j)) (Bdd.not_ m roots.(pos.(i)))))
               with Scanf.Scan_failure _ | End_of_file ->
                 Scanf.sscanf d.D.message "PO %d and PO %d are the same node"
                   (fun j i ->
                     Alcotest.(check int)
                       (D.to_string d ^ ": same driver")
                       pos.(i) pos.(j))))
        | _ -> Alcotest.fail (D.to_string d ^ ": expected a named location"))
    | "S002" | "S007" ->
        (* Care-set properties; the DRUP re-check inside the lint is the
           verifier here. Presence is fine, nothing extra to cross-check
           against node-level BDDs. *)
        ()
    | "S008" -> Alcotest.fail (D.to_string d ^ ": unknown on a tiny benchmark")
    | code -> Alcotest.fail (D.to_string d ^ ": unexpected code " ^ code)
  in
  List.iter
    (fun seed -> List.iter verify (Check.Lint.semantic ~seed net))
    [ 1; 2; 3 ]

let test_sem_budget_zero () =
  (* A zero conflict budget (and a BDD quota too small to build) answers
     every candidate query with an info-level S008 "unknown": never a
     crash, never a finding the engines could not prove, and never a
     nonzero exit code. *)
  let _, _, build = List.nth corruptions 0 in
  let diags = Check.Lint.semantic ~budget:0 ~bdd_nodes:1 (build ()) in
  Alcotest.(check bool) "produced at least one unknown" true (diags <> []);
  List.iter
    (fun (d : D.t) ->
      Alcotest.(check string) "only S008 under zero budget" "S008" d.D.code;
      Alcotest.(check bool) "unknowns are info" true (d.D.severity = D.Info))
    diags;
  Alcotest.(check int) "exit code unaffected" 0 (D.exit_code diags)

(* ------------------------------------------------------------------ *)
(* Writer round-trips: write -> parse -> write is byte-identical       *)
(* ------------------------------------------------------------------ *)

let test_blif_idempotent () =
  (* One parse normalizes (the parser instantiates in dependency order
     and materializes PO buffers); from then on write -> parse -> write
     must be a byte-level fixpoint, and the interface must survive every
     round. *)
  List.iter
    (fun name ->
      let net = Suite.lut_network name in
      let n1 = Blif.parse_string (Blif.to_string net) in
      let s2 = Blif.to_string n1 in
      let s3 = Blif.to_string (Blif.parse_string s2) in
      Alcotest.(check string) (name ^ " blif fixpoint") s2 s3;
      Alcotest.(check int) (name ^ " pis survive") (N.num_pis net)
        (N.num_pis n1);
      Alcotest.(check int) (name ^ " pos survive")
        (Array.length (N.pos net))
        (Array.length (N.pos n1)))
    Suite.names

let test_dimacs_idempotent () =
  List.iter
    (fun name ->
      let env = Tseitin.create ~record:true () in
      let _ = Tseitin.encode_network env (Suite.lut_network name) in
      let nvars = Solver.num_vars (Tseitin.solver env) in
      let s1 = Dimacs.to_string nvars (Tseitin.clauses env) in
      let nvars2, clauses2 = Dimacs.parse_string s1 in
      let s2 = Dimacs.to_string nvars2 clauses2 in
      Alcotest.(check string) (name ^ " dimacs round-trip") s1 s2)
    Suite.names

(* ------------------------------------------------------------------ *)
(* JSONL schema: golden file                                           *)
(* ------------------------------------------------------------------ *)

(* One diagnostic per location kind and severity; the golden file pins
   the exact rendered bytes so any schema drift (field rename, ordering,
   escaping) fails here and forces a schema_version bump. *)
let golden_diags () =
  [
    D.error ~loc:(D.Node 7) "N001" "combinational cycle";
    D.warn ~loc:(D.Clause 3) "C003" "tautological clause (x1 and ~x1)";
    D.info ~loc:(D.Named "po 2") "S006" "PO 2 is provably the complement of PO 0";
    D.warn
      ~loc:(D.Src (Srcloc.make ~file:"a.blif" ~line:4 ()))
      "P001" "parse error: bad \"cover\" row";
    D.info "C006" "variable 9 declared but never referenced";
  ]

let test_schema_golden () =
  let rendered =
    String.concat ""
      (List.map (fun d -> D.to_json d ^ "\n") (golden_diags ()))
  in
  (* dune runtest stages deps next to the binary; dune exec runs from
     the workspace root. *)
  let path =
    if Sys.file_exists "golden/diagnostics.jsonl" then
      "golden/diagnostics.jsonl"
    else "test/golden/diagnostics.jsonl"
  in
  let ic = open_in path in
  let n = in_channel_length ic in
  let golden = really_input_string ic n in
  close_in ic;
  Alcotest.(check string) "JSONL output matches the golden file" golden
    rendered;
  let tag = Printf.sprintf "\"schema_version\":%d" D.schema_version in
  String.split_on_char '\n' rendered
  |> List.iter (fun line ->
         if line <> "" then
           Alcotest.(check bool)
             ("line carries schema_version: " ^ line)
             true
             (String.length line > String.length tag
              && (let rec go i =
                    i + String.length tag <= String.length line
                    && (String.sub line i (String.length tag) = tag
                        || go (i + 1))
                  in
                  go 0)))

(* ------------------------------------------------------------------ *)
(* Diagnostics plumbing                                                *)
(* ------------------------------------------------------------------ *)

let test_exit_codes () =
  let e = D.error "X001" "boom"
  and w = D.warn "X002" "hmm"
  and i = D.info "X003" "fyi" in
  Alcotest.(check int) "clean" 0 (D.exit_code []);
  Alcotest.(check int) "info only" 0 (D.exit_code [ i ]);
  Alcotest.(check int) "warnings" 1 (D.exit_code [ i; w ]);
  Alcotest.(check int) "errors dominate" 2 (D.exit_code [ i; w; e ]);
  match D.sort [ i; w; e ] with
  | first :: _ -> Alcotest.(check string) "errors sort first" "X001" first.D.code
  | [] -> Alcotest.fail "sort dropped diagnostics"

let test_json_rendering () =
  let d = D.error ~loc:(D.Node 7) "N001" "cycle with \"quotes\"" in
  let json = D.to_json d in
  Alcotest.(check bool) ("escaped: " ^ json) true
    (String.length json > 0
    && json.[0] = '{'
    && json.[String.length json - 1] = '}');
  (* The quote must be escaped, the node id present. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "node loc" true (contains json {|"loc":{"node":7}|});
  Alcotest.(check bool) "escaped quotes" true (contains json {|\"quotes\"|});
  let located =
    D.warn
      ~loc:(D.Src (Simgen_base.Srcloc.make ~file:"x.blif" ~line:3 ()))
      "P001" "oops"
  in
  Alcotest.(check bool) "file/line loc" true
    (contains (D.to_json located) {|"loc":{"file":"x.blif","line":3}|})

let () =
  (* The suite-wide no-false-positive sweep assumes a clean slate; the
     audit tests flip the flag explicitly. *)
  Runtime_check.set_enabled false;
  Alcotest.run "simgen-check"
    [
      ( "net-lint",
        [
          Alcotest.test_case "clean network" `Quick test_clean_network;
          Alcotest.test_case "N001 cycle" `Quick test_cycle;
          Alcotest.test_case "N002 arity" `Quick test_arity_mismatch;
          Alcotest.test_case "N003 fanin refs" `Quick test_forward_and_range;
          Alcotest.test_case "N004 unreachable" `Quick test_unreachable;
          Alcotest.test_case "N006 duplicate names" `Quick test_duplicate_names;
          Alcotest.test_case "N008 const gate" `Quick test_constant_foldable;
          Alcotest.test_case "N009 buffer" `Quick test_buffer;
          Alcotest.test_case "N010 stale levels" `Quick test_stale_levels;
          Alcotest.test_case "levels invalidate" `Quick
            test_levels_recomputed_after_mutation;
          Alcotest.test_case "N012/N013 fanin hygiene" `Quick
            test_ignored_and_duplicate_fanin;
        ] );
      ( "aig-lint",
        [
          Alcotest.test_case "clean aig" `Quick test_aig_clean;
          Alcotest.test_case "A001 order" `Quick test_aig_non_canonical;
          Alcotest.test_case "A002 duplicate" `Quick test_aig_duplicate;
          Alcotest.test_case "A003 foldable" `Quick test_aig_foldable;
          Alcotest.test_case "A004 forward" `Quick test_aig_forward_fanin;
          Alcotest.test_case "A005 unreachable" `Quick test_aig_unreachable;
          Alcotest.test_case "A006 po range" `Quick test_aig_po_range;
        ] );
      ( "cnf-lint",
        [
          Alcotest.test_case "all codes" `Quick test_cnf_codes;
          Alcotest.test_case "clean cnf" `Quick test_cnf_clean;
          Alcotest.test_case "tseitin stream" `Quick test_tseitin_encoding_lint;
          Alcotest.test_case "C007 subsumption" `Quick test_cnf_subsumed;
          Alcotest.test_case "C008 complementary units" `Quick
            test_cnf_complementary_units;
        ] );
      ( "sem-lint",
        [
          Alcotest.test_case "seeded corruptions flagged" `Quick
            test_sem_corruptions;
          Alcotest.test_case "clean scaffold silent" `Quick test_sem_clean;
          Alcotest.test_case "findings re-prove in BDD" `Quick
            test_sem_no_false_positives;
          Alcotest.test_case "zero budget degrades to S008" `Quick
            test_sem_budget_zero;
        ] );
      ( "round-trips",
        [
          Alcotest.test_case "blif idempotent (42 suites)" `Quick
            test_blif_idempotent;
          Alcotest.test_case "dimacs idempotent (42 suites)" `Quick
            test_dimacs_idempotent;
        ] );
      ( "files",
        [
          Alcotest.test_case "P001 located" `Quick test_parse_error_located;
          Alcotest.test_case "P002 unknown" `Quick test_unknown_extension;
          Alcotest.test_case "dispatch clean" `Quick test_file_dispatch_clean;
        ] );
      ( "suites",
        [
          Alcotest.test_case "all suites error-free" `Quick
            test_suites_error_free;
          Alcotest.test_case "stacked + seeds" `Quick
            test_stacked_and_seeds_error_free;
        ] );
      ( "audits",
        [
          Alcotest.test_case "honest sweep passes" `Quick
            test_audit_passes_on_honest_sweep;
          Alcotest.test_case "broken merge caught" `Quick
            test_audit_catches_broken_merge;
          Alcotest.test_case "off by default" `Quick test_audit_off_by_default;
          Alcotest.test_case "eq partition" `Quick
            test_eq_partition_audit_positive;
          Alcotest.test_case "assignment" `Quick test_assignment_audit;
          Alcotest.test_case "session audits in cec" `Quick
            test_session_audits_during_cec;
        ] );
      ( "runner",
        [
          Alcotest.test_case "corrupt input rejected" `Quick
            test_runner_rejects_corrupt_input;
          Alcotest.test_case "clean input linted" `Quick
            test_runner_lints_clean_input;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "json" `Quick test_json_rendering;
          Alcotest.test_case "golden schema" `Quick test_schema_golden;
        ] );
    ]
