module TT = Simgen_network.Truth_table
module Npn = Simgen_network.Npn
module Rng = Simgen_base.Rng

let tt_testable = Alcotest.testable TT.pp TT.equal

let rng = Rng.create 77

let random_transform rng n =
  let perm = Array.init n Fun.id in
  Rng.shuffle rng perm;
  {
    Npn.perm;
    input_neg = Array.init n (fun _ -> Rng.bool rng);
    output_neg = Rng.bool rng;
  }

let test_apply_identity () =
  for _ = 1 to 20 do
    let n = 1 + Rng.int rng 5 in
    let tt = TT.random rng n in
    let id =
      { Npn.perm = Array.init n Fun.id;
        input_neg = Array.make n false;
        output_neg = false }
    in
    Alcotest.check tt_testable "identity" tt (Npn.apply tt id)
  done

let test_apply_output_negation () =
  let tt = TT.and_ (TT.var 0 2) (TT.var 1 2) in
  let tr =
    { Npn.perm = [| 0; 1 |]; input_neg = [| false; false |]; output_neg = true }
  in
  Alcotest.check tt_testable "nand" (TT.not_ tt) (Npn.apply tt tr)

let test_apply_input_negation_semantics () =
  (* and(a,b) with input 1 negated = and(a, ~b). *)
  let tt = TT.and_ (TT.var 0 2) (TT.var 1 2) in
  let tr =
    { Npn.perm = [| 0; 1 |]; input_neg = [| false; true |]; output_neg = false }
  in
  let expected = TT.and_ (TT.var 0 2) (TT.not_ (TT.var 1 2)) in
  Alcotest.check tt_testable "andnot" expected (Npn.apply tt tr)

let test_exact_orbit_invariance () =
  (* Every member of an NPN orbit has the same canonical key (n <= 4). *)
  for _ = 1 to 60 do
    let n = 1 + Rng.int rng 4 in
    let tt = TT.random rng n in
    let key = Npn.canonical_key tt in
    for _ = 1 to 10 do
      let tr = random_transform rng n in
      Alcotest.check tt_testable "orbit invariant" key
        (Npn.canonical_key (Npn.apply tt tr))
    done
  done

let test_canonical_reachable () =
  (* The returned transform really maps the function to the key. *)
  for _ = 1 to 60 do
    let n = 1 + Rng.int rng 4 in
    let tt = TT.random rng n in
    let key, tr = Npn.canonical tt in
    Alcotest.check tt_testable "transform reaches the key" key (Npn.apply tt tr)
  done

let test_canonical_idempotent () =
  for _ = 1 to 40 do
    let n = 1 + Rng.int rng 6 in
    let tt = TT.random rng n in
    let key = Npn.canonical_key tt in
    Alcotest.check tt_testable "idempotent" key (Npn.canonical_key key)
  done

let test_equivalent_known_pairs () =
  let and2 = TT.and_ (TT.var 0 2) (TT.var 1 2) in
  let nor2 = TT.not_ (TT.or_ (TT.var 0 2) (TT.var 1 2)) in
  let xor2 = TT.xor (TT.var 0 2) (TT.var 1 2) in
  let xnor2 = TT.not_ xor2 in
  Alcotest.(check bool) "and ~ nor (negate inputs+output chain)" true
    (Npn.equivalent and2 nor2);
  Alcotest.(check bool) "xor ~ xnor" true (Npn.equivalent xor2 xnor2);
  Alcotest.(check bool) "and !~ xor" false (Npn.equivalent and2 xor2)

let test_orbit_size_classes () =
  (* All 2^2^2 = 16 two-input functions fall into exactly 4 NPN classes:
     constants, single variable, and/or family, xor family. *)
  let keys = Hashtbl.create 8 in
  for bits = 0 to 15 do
    let tt = TT.of_bits 2 (Int64.of_int bits) in
    Hashtbl.replace keys (TT.to_string (Npn.canonical_key tt)) ()
  done;
  Alcotest.(check int) "4 classes of 2-input functions" 4 (Hashtbl.length keys)

let test_greedy_wide_functions () =
  (* For 5-6 inputs the semi-canonical key is still transform-consistent
     for output negation (count-based normalisation is exact there when
     counts differ). *)
  for _ = 1 to 20 do
    let n = 5 + Rng.int rng 2 in
    let tt = TT.random rng n in
    if 2 * TT.count_ones tt <> 1 lsl n then
      Alcotest.check tt_testable "output polarity normalised"
        (Npn.canonical_key tt)
        (Npn.canonical_key (TT.not_ tt))
  done

(* ------------------------------------------------------------------ *)
(* Adversarial collisions against the function cache                   *)
(*                                                                     *)
(* Pairs with EQUAL canonical signatures but inequivalent functions    *)
(* are exactly the inputs that would corrupt a verdict if the cache    *)
(* trusted its keys. Every case here must come back as a validated     *)
(* counterexample or a miss — never Equal — even when the store        *)
(* already holds a proved entry under the colliding signature.         *)
(* ------------------------------------------------------------------ *)

module N = Simgen_network.Network
module Fun_cache = Simgen_sweep.Fun_cache

let eval net vec id =
  let rec ev id =
    match N.kind net id with
    | N.Pi k -> vec.(k)
    | N.Gate f -> TT.eval f (Array.map ev (N.fanins net id))
  in
  ev id

(* Consult [fc] for a fresh two-gate network computing [f] and [g] over
   [n] shared PIs. *)
let consult_pair fc f g n =
  let net = N.create () in
  let pis = Array.init n (fun _ -> N.add_pi net) in
  let a = N.add_gate net f pis in
  let b = N.add_gate net g pis in
  N.add_po net a;
  N.add_po net b;
  let subst = Array.init (N.num_nodes net) Fun.id in
  (net, a, b, Fun_cache.consult fc ~rng:(Rng.create 3) ~subst net a b)

let check_never_equal ~what fc f g n =
  let net, a, b, outcome = consult_pair fc f g n in
  match outcome with
  | Fun_cache.Equal -> Alcotest.failf "%s: Equal served on a collision" what
  | Fun_cache.Counterexample vec ->
      Alcotest.(check bool) (what ^ ": cex distinguishes") true
        (eval net vec a <> eval net vec b)
  | Fun_cache.Miss _ | Fun_cache.Unsupported -> ()

let test_collision_buf_vs_not () =
  let x = TT.var 0 1 in
  let nx = TT.not_ x in
  Alcotest.check tt_testable "x and ~x share a canonical key"
    (Npn.canonical_key x) (Npn.canonical_key nx);
  let fc = Fun_cache.create () in
  (* Seed the colliding signature with a SAT-proved Equal entry for the
     genuinely-equal pair (x, x)... *)
  (match consult_pair fc x x 1 with
   | _, _, _, Fun_cache.Equal -> ()
   | _ -> Alcotest.fail "identical cones must be Equal");
  let net = N.create () in
  let p = N.add_pi net in
  let a = N.add_gate net x [| p |] in
  let b = N.add_gate net x [| p |] in
  N.add_po net a;
  N.add_po net b;
  let subst = Array.init (N.num_nodes net) Fun.id in
  (match Fun_cache.consult fc ~serve_equal:false ~rng:(Rng.create 3) ~subst net a b with
   | Fun_cache.Miss slot ->
       Fun_cache.record fc slot
         (Fun_cache.Proved { conflicts = 9; proof = Some [ [ 1 ] ] })
   | _ -> Alcotest.fail "certification consult must miss");
  (* ...then the inequivalent pair (x, ~x) hits the same entry and must
     still be separated. *)
  check_never_equal ~what:"buf vs not" fc x nx 1

let test_collision_xor_vs_xnor () =
  let xor2 = TT.xor (TT.var 0 2) (TT.var 1 2) in
  let xnor2 = TT.not_ xor2 in
  Alcotest.check tt_testable "xor and xnor share a canonical key"
    (Npn.canonical_key xor2) (Npn.canonical_key xnor2);
  let fc = Fun_cache.create () in
  check_never_equal ~what:"xor vs xnor" fc xor2 xnor2 2;
  (* xor/xnor differ on EVERY minterm; replaying the first pair's stored
     pattern block for the reversed pair is still a valid separation and
     must validate *)
  check_never_equal ~what:"xnor vs xor" fc xnor2 xor2 2

let test_collision_negated_permuted () =
  (* n <= 4: canonicalisation is exact, so every transformed variant has
     the SAME key — pointwise-different variants are all collisions. *)
  let fc = Fun_cache.create () in
  let exercised = ref 0 in
  for _ = 1 to 80 do
    let n = 1 + Rng.int rng 4 in
    let f = TT.random rng n in
    let g = Npn.apply f (random_transform rng n) in
    if not (TT.equal f g) then begin
      incr exercised;
      Alcotest.check tt_testable "same canonical key"
        (Npn.canonical_key f) (Npn.canonical_key g);
      check_never_equal ~what:"negated/permuted" fc f g n
    end
  done;
  Alcotest.(check bool) "exercised collisions" true (!exercised >= 20)

let test_collision_wide_cones () =
  (* 6-input cones sit beyond the exact-canonicalisation limit; the
     greedy key is deterministic, so transformed variants that land on
     the same key give true collisions at width 6. The shared cache
     accumulates entries under those keys across iterations — later
     consults must still separate every pair. *)
  let fc = Fun_cache.create () in
  let colliding = ref 0 in
  for _ = 1 to 120 do
    let f = TT.random rng 6 in
    let g = Npn.apply f (random_transform rng 6) in
    if not (TT.equal f g) then begin
      if TT.equal (Npn.canonical_key f) (Npn.canonical_key g) then
        incr colliding;
      (* equal keys or not, Equal must never be served for a
         pointwise-different pair *)
      check_never_equal ~what:"wide cone" fc f g 6
    end
  done;
  Alcotest.(check bool) "found 6-input signature collisions" true
    (!colliding >= 5)

let () =
  Alcotest.run "npn"
    [
      ( "apply",
        [
          Alcotest.test_case "identity" `Quick test_apply_identity;
          Alcotest.test_case "output negation" `Quick test_apply_output_negation;
          Alcotest.test_case "input negation" `Quick
            test_apply_input_negation_semantics;
        ] );
      ( "canonical",
        [
          Alcotest.test_case "orbit invariance" `Quick test_exact_orbit_invariance;
          Alcotest.test_case "reachable" `Quick test_canonical_reachable;
          Alcotest.test_case "idempotent" `Quick test_canonical_idempotent;
          Alcotest.test_case "known pairs" `Quick test_equivalent_known_pairs;
          Alcotest.test_case "2-input classes" `Quick test_orbit_size_classes;
          Alcotest.test_case "wide functions" `Quick test_greedy_wide_functions;
        ] );
      ( "collisions",
        [
          Alcotest.test_case "buf vs not" `Quick test_collision_buf_vs_not;
          Alcotest.test_case "xor vs xnor" `Quick test_collision_xor_vs_xnor;
          Alcotest.test_case "negated/permuted" `Quick
            test_collision_negated_permuted;
          Alcotest.test_case "wide cones" `Quick test_collision_wide_cones;
        ] );
    ]
