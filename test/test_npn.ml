module TT = Simgen_network.Truth_table
module Npn = Simgen_network.Npn
module Rng = Simgen_base.Rng

let tt_testable = Alcotest.testable TT.pp TT.equal

let rng = Rng.create 77

let random_transform rng n =
  let perm = Array.init n Fun.id in
  Rng.shuffle rng perm;
  {
    Npn.perm;
    input_neg = Array.init n (fun _ -> Rng.bool rng);
    output_neg = Rng.bool rng;
  }

let test_apply_identity () =
  for _ = 1 to 20 do
    let n = 1 + Rng.int rng 5 in
    let tt = TT.random rng n in
    let id =
      { Npn.perm = Array.init n Fun.id;
        input_neg = Array.make n false;
        output_neg = false }
    in
    Alcotest.check tt_testable "identity" tt (Npn.apply tt id)
  done

let test_apply_output_negation () =
  let tt = TT.and_ (TT.var 0 2) (TT.var 1 2) in
  let tr =
    { Npn.perm = [| 0; 1 |]; input_neg = [| false; false |]; output_neg = true }
  in
  Alcotest.check tt_testable "nand" (TT.not_ tt) (Npn.apply tt tr)

let test_apply_input_negation_semantics () =
  (* and(a,b) with input 1 negated = and(a, ~b). *)
  let tt = TT.and_ (TT.var 0 2) (TT.var 1 2) in
  let tr =
    { Npn.perm = [| 0; 1 |]; input_neg = [| false; true |]; output_neg = false }
  in
  let expected = TT.and_ (TT.var 0 2) (TT.not_ (TT.var 1 2)) in
  Alcotest.check tt_testable "andnot" expected (Npn.apply tt tr)

let test_exact_orbit_invariance () =
  (* Every member of an NPN orbit has the same canonical key (n <= 4). *)
  for _ = 1 to 60 do
    let n = 1 + Rng.int rng 4 in
    let tt = TT.random rng n in
    let key = Npn.canonical_key tt in
    for _ = 1 to 10 do
      let tr = random_transform rng n in
      Alcotest.check tt_testable "orbit invariant" key
        (Npn.canonical_key (Npn.apply tt tr))
    done
  done

let test_canonical_reachable () =
  (* The returned transform really maps the function to the key. *)
  for _ = 1 to 60 do
    let n = 1 + Rng.int rng 4 in
    let tt = TT.random rng n in
    let key, tr = Npn.canonical tt in
    Alcotest.check tt_testable "transform reaches the key" key (Npn.apply tt tr)
  done

let test_canonical_idempotent () =
  for _ = 1 to 40 do
    let n = 1 + Rng.int rng 6 in
    let tt = TT.random rng n in
    let key = Npn.canonical_key tt in
    Alcotest.check tt_testable "idempotent" key (Npn.canonical_key key)
  done

let test_equivalent_known_pairs () =
  let and2 = TT.and_ (TT.var 0 2) (TT.var 1 2) in
  let nor2 = TT.not_ (TT.or_ (TT.var 0 2) (TT.var 1 2)) in
  let xor2 = TT.xor (TT.var 0 2) (TT.var 1 2) in
  let xnor2 = TT.not_ xor2 in
  Alcotest.(check bool) "and ~ nor (negate inputs+output chain)" true
    (Npn.equivalent and2 nor2);
  Alcotest.(check bool) "xor ~ xnor" true (Npn.equivalent xor2 xnor2);
  Alcotest.(check bool) "and !~ xor" false (Npn.equivalent and2 xor2)

let test_orbit_size_classes () =
  (* All 2^2^2 = 16 two-input functions fall into exactly 4 NPN classes:
     constants, single variable, and/or family, xor family. *)
  let keys = Hashtbl.create 8 in
  for bits = 0 to 15 do
    let tt = TT.of_bits 2 (Int64.of_int bits) in
    Hashtbl.replace keys (TT.to_string (Npn.canonical_key tt)) ()
  done;
  Alcotest.(check int) "4 classes of 2-input functions" 4 (Hashtbl.length keys)

let test_greedy_wide_functions () =
  (* For 5-6 inputs the semi-canonical key is still transform-consistent
     for output negation (count-based normalisation is exact there when
     counts differ). *)
  for _ = 1 to 20 do
    let n = 5 + Rng.int rng 2 in
    let tt = TT.random rng n in
    if 2 * TT.count_ones tt <> 1 lsl n then
      Alcotest.check tt_testable "output polarity normalised"
        (Npn.canonical_key tt)
        (Npn.canonical_key (TT.not_ tt))
  done

let () =
  Alcotest.run "npn"
    [
      ( "apply",
        [
          Alcotest.test_case "identity" `Quick test_apply_identity;
          Alcotest.test_case "output negation" `Quick test_apply_output_negation;
          Alcotest.test_case "input negation" `Quick
            test_apply_input_negation_semantics;
        ] );
      ( "canonical",
        [
          Alcotest.test_case "orbit invariance" `Quick test_exact_orbit_invariance;
          Alcotest.test_case "reachable" `Quick test_canonical_reachable;
          Alcotest.test_case "idempotent" `Quick test_canonical_idempotent;
          Alcotest.test_case "known pairs" `Quick test_equivalent_known_pairs;
          Alcotest.test_case "2-input classes" `Quick test_orbit_size_classes;
          Alcotest.test_case "wide functions" `Quick test_greedy_wide_functions;
        ] );
    ]
