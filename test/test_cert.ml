(* Whole-sweep certificates: the recorder (Sat_session / Sweeper) and the
   independent checker (Simgen_check.Certificate), exercised on real
   suite benchmarks plus targeted tampering for every X-code. *)

module Suite = Simgen_benchgen.Suite
module N = Simgen_network.Network
module Sweeper = Simgen_sweep.Sweeper
module Sweep_options = Simgen_sweep.Sweep_options
module Sat_session = Simgen_sweep.Sat_session
module Miter = Simgen_sweep.Miter
module Cert = Simgen_check.Certificate
module Diagnostic = Simgen_check.Diagnostic
module Sat = Simgen_sat

let opts certify =
  { Sweep_options.default with Sweep_options.seed = 7; certify }

(* Full sweep (random -> guided -> SAT) under the given options; returns
   the sweeper for inspection. *)
let sweep ?(name = "dec") certify =
  let net = Suite.lut_network name in
  let o = opts certify in
  let sw = Sweeper.create o net in
  Sweeper.random_round sw;
  ignore (Sweeper.run_guided o sw);
  ignore (Sweeper.sat_sweep o sw);
  sw

let codes report =
  List.sort_uniq compare
    (List.map (fun d -> d.Diagnostic.code) report.Cert.diags)

(* A certified session-route sweep yields a certificate the independent
   checker accepts, with every merge backed by a proved query. *)
let test_valid_certificate () =
  let sw = sweep true in
  let cert = Sweeper.certificate sw in
  let report = Cert.check cert in
  Alcotest.(check (list string)) "no diagnostics" [] (codes report);
  Alcotest.(check bool) "valid" true report.Cert.valid;
  Alcotest.(check bool) "has queries" true (report.Cert.queries > 0);
  Alcotest.(check bool) "has merges" true (report.Cert.merges > 0);
  Alcotest.(check bool) "proved <= queries" true
    (report.Cert.proved <= report.Cert.queries);
  Alcotest.(check bool) "checked <= steps" true
    (report.Cert.steps_checked <= report.Cert.steps)

(* Certification must not change verdicts: the final merge partition of a
   certified sweep is identical to the uncertified one. *)
let test_merge_parity () =
  List.iter
    (fun name ->
      let sw_plain = sweep ~name false and sw_cert = sweep ~name true in
      let net = Sweeper.network sw_plain in
      for id = 0 to N.num_nodes net - 1 do
        Alcotest.(check int)
          (Printf.sprintf "%s: representative of %d" name id)
          (Sweeper.representative sw_plain id)
          (Sweeper.representative sw_cert id)
      done)
    [ "dec"; "apex5" ]

(* An uncertified sweeper records nothing. *)
let test_uncertified_empty () =
  let sw = sweep false in
  let cert = Sweeper.certificate sw in
  Alcotest.(check int) "no queries" 0 (Array.length cert.Cert.queries);
  Alcotest.(check (list pass)) "no merges" [] cert.Cert.merges

(* ---------------------- tampering, one X-code each ------------------- *)

let cert_of_sweep () = Sweeper.certificate (sweep true)

let check_fails ~code (cert : Cert.t) =
  let report = Cert.check cert in
  Alcotest.(check bool) "invalid" false report.Cert.valid;
  Alcotest.(check bool)
    (Printf.sprintf "emits %s (got %s)" code (String.concat "," (codes report)))
    true
    (List.mem code (codes report))

let first_proven_merge (cert : Cert.t) =
  match cert.Cert.merges with
  | m :: _ -> m
  | [] -> Alcotest.fail "certificate has no merges"

(* X002: claim Equal on a query whose proof never derives the obligation
   (strip its proof events). *)
let test_tamper_obligation () =
  let cert = cert_of_sweep () in
  let queries = Array.copy cert.Cert.queries in
  let tampered = ref false in
  Array.iteri
    (fun i q ->
      match q with
      | Cert.Session ({ equal = true; _ } as s) when not !tampered ->
          tampered := true;
          queries.(i) <- Cert.Session { s with events = [] }
      | _ -> ())
    queries;
  Alcotest.(check bool) "found a proven session query" true !tampered;
  check_fails ~code:"X002" { cert with Cert.queries }

(* X003: an activation variable that already occurs in the problem
   clauses is not fresh. *)
let test_tamper_act_freshness () =
  let cert = cert_of_sweep () in
  let queries = Array.copy cert.Cert.queries in
  let tampered = ref false in
  Array.iteri
    (fun i q ->
      match q with
      | Cert.Session ({ va; _ } as s) when not !tampered ->
          tampered := true;
          queries.(i) <- Cert.Session { s with act = va }
      | _ -> ())
    queries;
  Alcotest.(check bool) "found a session query" true !tampered;
  check_fails ~code:"X003" { cert with Cert.queries }

(* X004: a merge citing no proof at all, and one citing a proof of a
   different pair. *)
let test_tamper_proof_ref () =
  let cert = cert_of_sweep () in
  let m = first_proven_merge cert in
  check_fails ~code:"X004"
    { cert with Cert.merges = [ { m with Cert.proof = -1 } ] };
  check_fails ~code:"X004"
    {
      cert with
      Cert.merges =
        [ { Cert.repr = m.Cert.repr + 1; node = m.Cert.node + 1;
            proof = m.Cert.proof } ];
    }

(* X005: representative id above the absorbed node. *)
let test_tamper_monotone () =
  let cert = cert_of_sweep () in
  let m = first_proven_merge cert in
  check_fails ~code:"X005"
    {
      cert with
      Cert.merges =
        [ { Cert.repr = m.Cert.node; node = m.Cert.repr;
            proof = m.Cert.proof } ];
    }

(* X007: the same node absorbed twice. *)
let test_tamper_double_merge () =
  let cert = cert_of_sweep () in
  let m = first_proven_merge cert in
  check_fails ~code:"X007" { cert with Cert.merges = [ m; m ] }

(* X008: node ids outside the network. *)
let test_tamper_range () =
  let cert = cert_of_sweep () in
  let m = first_proven_merge cert in
  check_fails ~code:"X008"
    {
      cert with
      Cert.merges =
        [ { m with Cert.node = cert.Cert.num_nodes + 5 } ];
    }

(* A Rebuild marker resets the checker's variable space: records taken
   from two separate sessions validate only with the marker between
   them. *)
let test_rebuild_marker () =
  let net = Suite.lut_network "dec" in
  let query_once () =
    let session = Sat_session.create ~certify:true net in
    (* Find a provably-equal pair: duplicate gates exist in the suite
       networks, so scan gate pairs with identical functions/fanins via
       the miter. *)
    let found = ref None in
    N.iter_nodes net (fun a ->
        if !found = None && not (N.is_pi net a) then
          N.iter_nodes net (fun b ->
              if !found = None && b > a && not (N.is_pi net b) then
                match Sat_session.check_pair session a b with
                | Sat_session.Equal -> found := Some (a, b)
                | _ -> ()));
    match (!found, Sat_session.take_cert_queries session) with
    | Some (a, b), qs ->
        ((a, b), List.filter (function Cert.Session _ -> true | _ -> false) qs)
    | None, _ -> Alcotest.fail "no equal pair found"
  in
  let (a, b), qs1 = query_once () in
  let _, qs2 = query_once () in
  (* The proving query of each session is its last record. *)
  let proof_idx = List.length qs1 + 1 + List.length qs2 - 1 in
  let with_marker =
    {
      Cert.num_nodes = N.num_nodes net;
      queries = Array.of_list (qs1 @ [ Cert.Rebuild ] @ qs2);
      merges = [ { Cert.repr = min a b; node = max a b; proof = proof_idx } ];
    }
  in
  let report = Cert.check with_marker in
  Alcotest.(check (list string)) "marker separates sessions" []
    (codes report);
  (* Without the marker the second session's records replay into the
     first session's variable space and must trip the checker (the act
     variables collide with already-used ones). *)
  let without_marker =
    {
      with_marker with
      Cert.queries = Array.of_list (qs1 @ qs2);
      merges = [];
    }
  in
  let report = Cert.check without_marker in
  Alcotest.(check bool) "collision detected" false report.Cert.valid

(* The fresh certified route (ladder fallback) produces standalone
   records the checker accepts, already trimmed. *)
let test_fresh_certified_route () =
  let net = Suite.lut_network "dec" in
  let sw = Sweeper.create (opts true) net in
  Sweeper.random_round sw;
  let o = { (opts true) with Sweep_options.incremental = false } in
  ignore (Sweeper.sat_sweep o sw);
  let cert = Sweeper.certificate sw in
  let all_fresh =
    Array.for_all
      (function Cert.Fresh _ -> true | _ -> false)
      cert.Cert.queries
  in
  Alcotest.(check bool) "fresh records only" true all_fresh;
  let report = Cert.check cert in
  Alcotest.(check (list string)) "fresh route validates" [] (codes report);
  Alcotest.(check bool) "has merges" true (report.Cert.merges > 0)

(* Drup.trim: the trimmed proof stays valid and never grows. *)
let test_trim () =
  let trims = ref 0 in
  let net = Suite.lut_network "apex5" in
  let sw = Sweeper.create (opts false) net in
  Sweeper.random_round sw;
  let checked = ref 0 in
  List.iter
    (fun cls ->
      match cls with
      | a :: b :: _ when !checked < 12 -> (
          incr checked;
          match
            Miter.check_pair_fresh_certified ~subst:(Sweeper.substitution sw)
              net a b
          with
          | Miter.Equal, valid, _, Some (Cert.Fresh { clauses; events; _ }) ->
              Alcotest.(check bool) "trimmed proof valid" true valid;
              Alcotest.(check bool) "trimmed proof still checks" true
                (Sat.Drup.check clauses events = Sat.Drup.Valid)
          | Miter.Equal, _, _, _ -> Alcotest.fail "Equal without a record"
          | (Miter.Counterexample _ | Miter.Unknown), _, _, _ -> ())
      | _ -> ())
    (Simgen_sim.Eq_classes.classes (Sweeper.classes sw));
  (* Count what the checker trims across a certified sweep: the counter
     must be consistent (trimmed + checked book-keeping never exceeds the
     recorded steps). *)
  let report = Cert.check (Sweeper.certificate (sweep true)) in
  trims := report.Cert.steps_trimmed;
  Alcotest.(check bool) "trim accounting" true
    (!trims >= 0 && report.Cert.steps_checked <= report.Cert.steps)

(* JSONL rendering round-trips the basic shape (line count and the
   trailing report line). *)
let test_jsonl () =
  let cert = cert_of_sweep () in
  let report = Cert.check cert in
  let out = Cert.to_jsonl cert (Some report) in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  Alcotest.(check int) "line count"
    (1 + Array.length cert.Cert.queries + List.length cert.Cert.merges + 1)
    (List.length lines);
  let last = List.nth lines (List.length lines - 1) in
  Alcotest.(check bool) "report line" true
    (String.length last > 16 && String.sub last 0 16 = {|{"type":"report"|});
  Alcotest.(check bool) "valid in report" true
    (report.Cert.valid
    && String.length last > 0
    &&
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    contains last {|"valid":true|})

(* A certify batch job emits a certificate telemetry phase and stays
   successful; its event reports a valid replay. *)
let test_runner_certify () =
  let module Job = Simgen_runner.Job in
  let module Events = Simgen_runner.Events in
  let module Exec = Simgen_runner.Exec in
  let net = Suite.lut_network "dec" in
  let spec =
    Job.make ~seed:3 ~guided_iterations:5 ~certify:true ~id:0
      (Job.Sweep (Job.Inline net))
  in
  let sink, drain = Events.memory () in
  let result = Exec.run ~events:sink ~worker:0 spec in
  Alcotest.(check string) "swept" "swept" (Job.status_to_string result.Job.status);
  let cert_events =
    List.filter_map
      (fun e ->
        match e.Events.payload with
        | Events.Certificate { valid; proved; _ } -> Some (valid, proved)
        | _ -> None)
      (drain ())
  in
  match cert_events with
  | [ (valid, proved) ] ->
      Alcotest.(check bool) "valid" true valid;
      Alcotest.(check bool) "proved some" true (proved > 0)
  | _ -> Alcotest.fail "expected exactly one certificate event"

let () =
  Alcotest.run "simgen-cert"
    [
      ( "certificate",
        [
          Alcotest.test_case "valid sweep certificate" `Slow
            test_valid_certificate;
          Alcotest.test_case "merge parity" `Slow test_merge_parity;
          Alcotest.test_case "uncertified empty" `Quick test_uncertified_empty;
          Alcotest.test_case "fresh certified route" `Slow
            test_fresh_certified_route;
          Alcotest.test_case "rebuild marker" `Slow test_rebuild_marker;
          Alcotest.test_case "trim" `Slow test_trim;
          Alcotest.test_case "jsonl" `Slow test_jsonl;
        ] );
      ( "tamper",
        [
          Alcotest.test_case "obligation (X002)" `Slow test_tamper_obligation;
          Alcotest.test_case "act freshness (X003)" `Slow
            test_tamper_act_freshness;
          Alcotest.test_case "proof ref (X004)" `Slow test_tamper_proof_ref;
          Alcotest.test_case "monotone (X005)" `Slow test_tamper_monotone;
          Alcotest.test_case "double merge (X007)" `Slow
            test_tamper_double_merge;
          Alcotest.test_case "range (X008)" `Slow test_tamper_range;
        ] );
      ( "runner",
        [ Alcotest.test_case "certify job event" `Slow test_runner_certify ] );
    ]
