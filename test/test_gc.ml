(* Clause-database management: group retraction with Delete proof
   events, root-level simplification, cross-call restart accumulation,
   and the session GC differential (GC on/off changes clause counts,
   never verdicts). *)

module S = Simgen_sat.Solver
module L = Simgen_sat.Literal
module Drup = Simgen_sat.Drup
module N = Simgen_network.Network
module Suite = Simgen_benchgen.Suite
module Sweeper = Simgen_sweep.Sweeper
module Sweep_options = Simgen_sweep.Sweep_options
module Cert = Simgen_check.Certificate
module Diagnostic = Simgen_check.Diagnostic

(* n pigeons, m holes; each clause extended with [extra] (an activation
   guard) when given. *)
let php ?extra s n m =
  let guard c = match extra with None -> c | Some l -> l :: c in
  let x = Array.init n (fun _ -> Array.init m (fun _ -> S.new_var s)) in
  for p = 0 to n - 1 do
    S.add_clause s (guard (List.init m (fun h -> L.pos x.(p).(h))))
  done;
  for h = 0 to m - 1 do
    for p1 = 0 to n - 1 do
      for p2 = p1 + 1 to n - 1 do
        S.add_clause s (guard [ L.neg x.(p1).(h); L.neg x.(p2).(h) ])
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* remove_group                                                        *)
(* ------------------------------------------------------------------ *)

let test_remove_group_retracts () =
  let s = S.create () in
  let x = S.new_var s in
  let g = S.new_var s in
  S.add_clause ~group:7 s [ L.neg g; L.pos x ];
  S.add_clause ~group:7 s [ L.neg g; L.neg x ];
  (* The group is contradictory under its activation literal. *)
  Alcotest.(check bool) "unsat under the guard" true
    (S.solve ~assumptions:[ L.pos g ] s = S.Unsat);
  (* Session discipline: retire the guard first, then physically
     retract — the group clauses are consequences of the retirement unit,
     so removal is sound regardless of what was learned from them. *)
  S.add_clause s [ L.neg g ];
  Alcotest.(check int) "both clauses removed" 2 (S.remove_group s 7);
  Alcotest.(check int) "unknown group removes nothing" 0 (S.remove_group s 7);
  Alcotest.(check bool) "instance intact after retraction" true
    (S.solve s = S.Sat);
  (* A later, independent query is unaffected by the dead group. *)
  let y = S.new_var s in
  let h = S.new_var s in
  S.add_clause ~group:8 s [ L.neg h; L.pos y ];
  Alcotest.(check bool) "fresh guarded query" true
    (S.solve ~assumptions:[ L.pos h ] s = S.Sat);
  Alcotest.(check bool) "guarded clause active" true (S.value s y);
  let st = S.stats s in
  Alcotest.(check int) "counted as removed" 2 st.S.removed;
  Alcotest.(check int) "one live problem clause" 1 st.S.live_clauses

let test_remove_group_delete_events () =
  let s = S.create () in
  S.enable_proof s;
  let a = S.new_var s in
  let g = S.new_var s in
  let c1 = [ L.neg g; L.pos a ] and c2 = [ L.neg g; L.neg a ] in
  S.add_clause ~group:1 s c1;
  S.add_clause ~group:1 s c2;
  Alcotest.(check bool) "unsat under assumption" true
    (S.solve ~assumptions:[ L.pos g ] s = S.Unsat);
  (* Retire the query and retract its clauses, recording the deletions. *)
  S.add_clause s [ L.neg g ];
  Alcotest.(check int) "group retracted" 2 (S.remove_group s 1);
  let deletes =
    List.filter_map
      (function S.Delete c -> Some (List.sort compare (Array.to_list c)) | S.Learn _ -> None)
      (S.proof_events s)
  in
  Alcotest.(check int) "one Delete event per retracted clause" 2
    (List.length deletes);
  List.iter
    (fun c ->
      Alcotest.(check bool) "Delete carries the retracted literals" true
        (List.mem (List.sort compare c) deletes))
    [ c1; c2 ];
  (* A deletion-bearing proof still checks: finish with a real
     refutation on fresh variables and validate the whole stream against
     every problem clause ever added. *)
  let formula = ref [ c1; c2; [ L.neg g ] ] in
  let n = 4 and m = 3 in
  let x = Array.init n (fun _ -> Array.init m (fun _ -> S.new_var s)) in
  for p = 0 to n - 1 do
    let c = List.init m (fun h -> L.pos x.(p).(h)) in
    formula := c :: !formula;
    S.add_clause s c
  done;
  for h = 0 to m - 1 do
    for p1 = 0 to n - 1 do
      for p2 = p1 + 1 to n - 1 do
        let c = [ L.neg x.(p1).(h); L.neg x.(p2).(h) ] in
        formula := c :: !formula;
        S.add_clause s c
      done
    done
  done;
  Alcotest.(check bool) "php(4,3) unsat" true (S.solve s = S.Unsat);
  Alcotest.(check bool) "proof with deletions validates" true
    (Drup.check (List.rev !formula) (S.proof_events s) = Drup.Valid);
  (* With ~proof:false nothing is recorded (monotone-sound omission). *)
  let s2 = S.create () in
  S.enable_proof s2;
  let y = S.new_var s2 in
  let h = S.new_var s2 in
  S.add_clause ~group:3 s2 [ L.neg h; L.pos y ];
  S.add_clause ~group:3 s2 [ L.neg h; L.neg y ];
  Alcotest.(check int) "silent retraction" 2 (S.remove_group ~proof:false s2 3);
  Alcotest.(check int) "no events recorded" 0 (S.proof_event_count s2)

(* ------------------------------------------------------------------ *)
(* simplify                                                            *)
(* ------------------------------------------------------------------ *)

let test_simplify_collects_root_satisfied () =
  let s = S.create () in
  let a = S.new_var s in
  let b = S.new_var s in
  S.add_clause s [ L.pos a; L.pos b ];
  S.add_clause s [ L.pos a; L.neg b ];
  (* The unit satisfies both stored clauses at the root. *)
  S.add_clause s [ L.pos a ];
  S.simplify s;
  let st = S.stats s in
  Alcotest.(check int) "root-satisfied clauses collected" 2 st.S.removed;
  Alcotest.(check int) "no live problem clauses" 0 st.S.live_clauses;
  Alcotest.(check bool) "at least one compaction" true (st.S.compactions >= 1);
  (* The instance is untouched semantically. *)
  Alcotest.(check bool) "still sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "unit survives" true (S.value s a);
  Alcotest.(check bool) "idempotent" true
    (S.simplify s;
     (S.stats s).S.removed = 2)

(* ------------------------------------------------------------------ *)
(* Decision focus                                                      *)
(* ------------------------------------------------------------------ *)

let test_focus_decisions () =
  let s = S.create () in
  let x = S.new_var s in
  let y = S.new_var s in
  let z = S.new_var s in
  (* z <-> y is a conservative extension: any assignment of [x] (the
     focus) extends to a model, so a focused Sat needs no decision
     outside the focus. *)
  S.add_clause s [ L.neg y; L.pos z ];
  S.add_clause s [ L.pos y; L.neg z ];
  S.focus_decisions s [ x ];
  Alcotest.(check bool) "sat under focus" true (S.solve s = S.Sat);
  Alcotest.(check bool) "only the focused variable decided" true
    ((S.stats s).S.decisions <= 1);
  (* Unsat answers under focus are exact. *)
  S.add_clause s [ L.pos x ];
  Alcotest.(check bool) "failed assumption under focus" true
    (S.solve ~assumptions:[ L.neg x ] s = S.Unsat);
  (* Lifting the focus restores the variables the focused search popped
     off the order heap: this instance is unsatisfiable but has no unit,
     so refuting it *requires* branching on y or z — a heap that lost
     them would answer Sat. *)
  S.unfocus_decisions s;
  S.add_clause s [ L.pos y; L.pos z ];
  S.add_clause s [ L.neg y; L.neg z ];
  Alcotest.(check bool) "unfocused search reaches every variable" true
    (S.solve s = S.Unsat)

(* ------------------------------------------------------------------ *)
(* Restart policy                                                      *)
(* ------------------------------------------------------------------ *)

let test_restarts_within_one_call () =
  let s = S.create () in
  php s 7 6;
  Alcotest.(check bool) "php(7,6) unsat" true (S.solve s = S.Unsat);
  let st = S.stats s in
  Alcotest.(check bool) "enough conflicts to restart" true
    (st.S.conflicts > 100);
  Alcotest.(check bool) "restarts happened" true (st.S.restarts >= 1)

let test_restarts_accumulate_across_calls () =
  (* Many short queries, each cheaper than the first Luby budget: a
     per-call restart counter would stay 0 forever; the persistent
     policy restarts once the conflicts add up. *)
  let s = S.create () in
  let restarts = ref 0 in
  for _ = 1 to 40 do
    let act = S.new_var s in
    php ~extra:(L.neg act) s 4 3;
    Alcotest.(check bool) "guarded php(4,3) unsat" true
      (S.solve ~assumptions:[ L.pos act ] s = S.Unsat);
    S.add_clause s [ L.neg act ];
    restarts := (S.stats s).S.restarts
  done;
  let st = S.stats s in
  Alcotest.(check bool) "conflicts accumulated past the first budget" true
    (st.S.conflicts > 100);
  Alcotest.(check bool) "cross-call restarts" true (!restarts >= 1)

(* ------------------------------------------------------------------ *)
(* Session GC differential                                             *)
(* ------------------------------------------------------------------ *)

let opts ~gc ~certify seed =
  {
    Sweep_options.default with
    Sweep_options.seed;
    guided_iterations = 4;
    session_gc = gc;
    certify;
  }

let partition sw net =
  let parts = ref [] in
  N.iter_gates net (fun id -> parts := Sweeper.representative sw id :: !parts);
  !parts

let sweep o net =
  let sw = Sweeper.create o net in
  Sweeper.random_round sw;
  ignore (Sweeper.run_guided o sw);
  let s = Sweeper.sat_sweep o sw in
  (sw, s)

let test_gc_differential_stacked () =
  (* GC on vs off on a stacked suite benchmark, >= 3 seeds: identical
     final merge partitions and proved-merge counts; GC actually
     collected something. *)
  let net = Suite.stacked_lut_network "apex2" in
  List.iter
    (fun seed ->
      let sw_gc, s_gc = sweep (opts ~gc:true ~certify:false seed) net in
      let sw_off, s_off = sweep (opts ~gc:false ~certify:false seed) net in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: identical partitions" seed)
        true
        (partition sw_gc net = partition sw_off net);
      (* Counter-example sequences (and so disproof call counts) may
         differ — different models — but the number of proved merges is
         [gates - true classes] either way. *)
      Alcotest.(check int)
        (Printf.sprintf "seed %d: same proved merges" seed)
        s_off.Sweeper.proved s_gc.Sweeper.proved;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: GC collected clauses" seed)
        true (s_gc.Sweeper.deleted > 0))
    [ 2; 5; 13 ]

let test_gc_certificate_valid () =
  (* A GC-enabled certifying sweep on a stacked suite still yields a
     certificate the independent checker accepts: the deletions the GC
     performs never reach the per-query certificate slices unsoundly. *)
  let net = Suite.stacked_lut_network "apex2" in
  let sw, s = sweep (opts ~gc:true ~certify:true 7) net in
  Alcotest.(check bool) "GC fired during the certified sweep" true
    (s.Sweeper.deleted > 0);
  let report = Cert.check (Sweeper.certificate sw) in
  let codes =
    List.sort_uniq compare
      (List.map (fun d -> d.Diagnostic.code) report.Cert.diags)
  in
  Alcotest.(check (list string)) "no diagnostics" [] codes;
  Alcotest.(check bool) "certificate valid" true report.Cert.valid;
  Alcotest.(check bool) "merges certified" true (report.Cert.merges > 0)

let () =
  Alcotest.run "gc"
    [
      ( "solver",
        [
          Alcotest.test_case "remove_group retracts" `Quick
            test_remove_group_retracts;
          Alcotest.test_case "delete proof events" `Quick
            test_remove_group_delete_events;
          Alcotest.test_case "simplify" `Quick
            test_simplify_collects_root_satisfied;
          Alcotest.test_case "decision focus" `Quick test_focus_decisions;
          Alcotest.test_case "restarts in one call" `Quick
            test_restarts_within_one_call;
          Alcotest.test_case "restarts across calls" `Quick
            test_restarts_accumulate_across_calls;
        ] );
      ( "session",
        [
          Alcotest.test_case "stacked differential" `Slow
            test_gc_differential_stacked;
          Alcotest.test_case "certificate with GC" `Slow
            test_gc_certificate_valid;
        ] );
    ]
