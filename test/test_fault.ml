(* Fault injection and the graceful-degradation ladder.

   Covers the registry itself (deterministic, seedable, one-shot sites),
   the budgeted solver entry point it leans on, each rung of the
   degradation ladder in [Sweeper.verify_pair], the retry supervisor in
   [Exec], and the fault matrix: every registered site, injected one
   shot at a time under three RNG seeds, over a stacked-benchmark CEC —
   the final verdict and merge count must match the fault-free run, and
   nothing may escape as an exception. *)

module Fault = Simgen_fault.Fault
module S = Simgen_sat.Solver
module L = Simgen_sat.Literal
module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Rng = Simgen_base.Rng
module Runtime_check = Simgen_base.Runtime_check
module Sweeper = Simgen_sweep.Sweeper
module Sat_session = Simgen_sweep.Sat_session
module Sweep_options = Simgen_sweep.Sweep_options
module Cec = Simgen_sweep.Cec
module Job = Simgen_runner.Job
module Exec = Simgen_runner.Exec
module Budget = Simgen_runner.Budget
module Retry_policy = Simgen_runner.Retry_policy
module Events = Simgen_runner.Events
module Pattern_cache = Simgen_runner.Pattern_cache
module Manifest = Simgen_runner.Manifest

(* Every test leaves the registry disarmed for the next one. *)
let with_faults f =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset f

let tt_and2 = TT.and_ (TT.var 0 2) (TT.var 1 2)
let tt_or2 = TT.or_ (TT.var 0 2) (TT.var 1 2)

(* A net with an equal pair (x1,x2) and a distinct pair (x1,y1). *)
let pair_net () =
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let x1 = N.add_gate net tt_and2 [| a; b |] in
  let x2 = N.add_gate net tt_and2 [| b; a |] in
  let y1 = N.add_gate net tt_or2 [| a; b |] in
  List.iter (N.add_po net) [ x1; x2; y1 ];
  (net, x1, x2, y1)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_sites () =
  Alcotest.(check int) "twelve sites" 12 (List.length Fault.sites);
  List.iter
    (fun s ->
      Alcotest.(check bool) ("registered: " ^ s) true (List.mem s Fault.sites))
    [
      "sat-budget"; "session-corrupt"; "parse"; "cache-poison";
      "serve-cache-poison"; "gen-giveup"; "worker-crash"; "worker-stall";
      "conn-drop"; "disk-full"; "slow-client"; "journal-torn-write";
    ]

let test_disarmed_inert () =
  with_faults (fun () ->
      Alcotest.(check bool) "inactive" false (Fault.enabled ());
      Alcotest.(check bool) "no fire" false (Fault.fire "parse");
      Alcotest.(check int) "no count" 0 (Fault.fired "parse"))

let test_unknown_site_rejected () =
  with_faults (fun () ->
      Alcotest.check_raises "arm" (Invalid_argument "Fault: unknown site nope")
        (fun () -> Fault.arm "nope");
      (try
         ignore (Fault.fire "nope");
         Alcotest.fail "fire accepted an unknown site"
       with Invalid_argument _ -> ()))

let test_arm_once () =
  with_faults (fun () ->
      Fault.arm ~times:1 "parse";
      Alcotest.(check bool) "active" true (Fault.enabled ());
      Alcotest.(check bool) "first shot fires" true (Fault.fire "parse");
      Alcotest.(check bool) "one shot only" false (Fault.fire "parse");
      Alcotest.(check int) "counted once" 1 (Fault.fired "parse"))

let test_seeded_determinism () =
  let draw () =
    Fault.arm ~prob:0.5 ~seed:11 "parse";
    List.init 50 (fun _ -> Fault.fire "parse")
  in
  with_faults (fun () ->
      let first = draw () in
      Fault.reset ();
      let second = draw () in
      Alcotest.(check (list bool)) "same seed, same pattern" first second;
      Alcotest.(check bool) "prob 0.5 fires sometimes" true
        (List.mem true first);
      Alcotest.(check bool) "prob 0.5 skips sometimes" true
        (List.mem false first))

let test_crash_raises () =
  with_faults (fun () ->
      Fault.crash "worker-crash" (* disarmed: no-op *);
      Fault.arm ~times:1 "worker-crash";
      (try
         Fault.crash "worker-crash";
         Alcotest.fail "armed crash did not raise"
       with Fault.Injected site ->
         Alcotest.(check string) "site name" "worker-crash" site))

let test_configure () =
  with_faults (fun () ->
      (match Fault.configure "parse:1.0:3" with
       | Ok () -> ()
       | Error e -> Alcotest.failf "rejected valid spec: %s" e);
      Alcotest.(check bool) "armed via spec" true (Fault.fire "parse");
      Fault.reset ();
      (match Fault.configure "all:1.0:42" with
       | Ok () -> ()
       | Error e -> Alcotest.failf "rejected all: %s" e);
      List.iter
        (fun s ->
          Alcotest.(check bool) ("all armed " ^ s) true (Fault.fire s))
        Fault.sites;
      Fault.reset ();
      (match Fault.configure "bogus" with
       | Error _ -> ()
       | Ok () -> Alcotest.fail "accepted unknown site");
      match Fault.configure "parse:notaprob" with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "accepted malformed probability")

let test_log () =
  with_faults (fun () ->
      Fault.arm "parse";
      Fault.arm "worker-crash";
      ignore (Fault.fire "worker-crash");
      ignore (Fault.fire "parse");
      ignore (Fault.fire "parse");
      (* sites order, counts per site *)
      Alcotest.(check (list (pair string int)))
        "log in sites order"
        [ ("parse", 2); ("worker-crash", 1) ]
        (Fault.log ()))

(* ------------------------------------------------------------------ *)
(* Budgeted solving                                                    *)
(* ------------------------------------------------------------------ *)

let php s n m =
  (* n pigeons, m holes *)
  let x = Array.init n (fun _ -> Array.init m (fun _ -> S.new_var s)) in
  for p = 0 to n - 1 do
    S.add_clause s (List.init m (fun h -> L.pos x.(p).(h)))
  done;
  for h = 0 to m - 1 do
    for p1 = 0 to n - 1 do
      for p2 = p1 + 1 to n - 1 do
        S.add_clause s [ L.neg x.(p1).(h); L.neg x.(p2).(h) ]
      done
    done
  done

let test_solve_limited_zero_budget () =
  let s = S.create () in
  php s 3 2;
  Alcotest.(check bool) "immediate unknown" true
    (S.solve_limited ~limits:(S.Limits.conflicts 0) s = S.LUnknown);
  (* The instance survives the refusal and still answers unbudgeted. *)
  Alcotest.(check bool) "resumes to unsat" true (S.solve_limited s = S.LUnsat);
  Alcotest.(check bool) "classic entry agrees" true (S.solve s = S.Unsat)

let test_solve_limited_resume () =
  let s = S.create () in
  php s 5 4;
  (* Climb in small conflict budgets: some rounds must come back unknown
     before the paid-for learned clauses finish the proof. *)
  let unknowns = ref 0 in
  let rec climb guard =
    if guard = 0 then Alcotest.fail "never finished under repeated budgets"
    else
      match S.solve_limited ~limits:(S.Limits.conflicts 3) s with
      | S.LUnknown ->
          incr unknowns;
          climb (guard - 1)
      | S.LUnsat -> ()
      | S.LSat -> Alcotest.fail "php(5,4) is unsat"
  in
  climb 1000;
  Alcotest.(check bool) "at least one budgeted refusal" true (!unknowns > 0)

let test_solve_limited_sat_model () =
  let s = S.create () in
  let v = S.new_var s in
  let w = S.new_var s in
  S.add_clause s [ L.pos v ];
  S.add_clause s [ L.neg v; L.pos w ];
  Alcotest.(check bool) "sat" true (S.solve_limited ~limits:(S.Limits.conflicts 10) s = S.LSat);
  Alcotest.(check bool) "model v" true (S.value s v);
  Alcotest.(check bool) "model w" true (S.value s w)

(* ------------------------------------------------------------------ *)
(* The degradation ladder                                              *)
(* ------------------------------------------------------------------ *)

let ladder_opts =
  { Sweep_options.default with Sweep_options.seed = 5 }

let test_ladder_bdd_rescue () =
  with_faults (fun () ->
      let net, x1, x2, _ = pair_net () in
      let sw = Sweeper.create ladder_opts net in
      (* A zero base budget starves every SAT rung (0 * 4^k = 0), so only
         the BDD rung can decide — and it must, with the right verdict. *)
      let opts =
        { ladder_opts with Sweep_options.max_conflicts = Some 0; escalations = 2 }
      in
      let verdict, _ = Sweeper.verify_pair opts sw x1 x2 in
      Alcotest.(check bool) "BDD rung decides Equal" true
        (verdict = Sat_session.Equal);
      let d = Sweeper.degrade_stats sw in
      Alcotest.(check int) "session rungs + fresh all refused" 4 d.Sweeper.unknowns;
      Alcotest.(check int) "escalated twice" 2 d.Sweeper.escalations;
      Alcotest.(check int) "fresh fallback" 1 d.Sweeper.fresh_fallbacks;
      Alcotest.(check int) "bdd fallback" 1 d.Sweeper.bdd_fallbacks;
      Alcotest.(check int) "no rebuilds" 0 d.Sweeper.session_rebuilds;
      Alcotest.(check int) "nothing quarantined" 0
        (List.length d.Sweeper.quarantined))

let test_ladder_quarantine () =
  with_faults (fun () ->
      let net, x1, x2, _ = pair_net () in
      let sw = Sweeper.create ladder_opts net in
      (* Starve the SAT rungs and the BDD quota: every rung gives up and
         the pair is quarantined with verdict Unknown — never merged. *)
      let opts =
        {
          ladder_opts with
          Sweep_options.max_conflicts = Some 0;
          escalations = 1;
          bdd_fallback_nodes = 1;
        }
      in
      let verdict, _ = Sweeper.verify_pair opts sw x1 x2 in
      Alcotest.(check bool) "verdict Unknown" true (verdict = Sat_session.Unknown);
      let d = Sweeper.degrade_stats sw in
      Alcotest.(check (list (pair int int)))
        "pair quarantined"
        [ (min x1 x2, max x1 x2) ]
        d.Sweeper.quarantined;
      (* Quarantine deduplicates. *)
      let verdict2, _ = Sweeper.verify_pair opts sw x1 x2 in
      Alcotest.(check bool) "still Unknown" true (verdict2 = Sat_session.Unknown);
      Alcotest.(check int) "recorded once" 1
        (List.length (Sweeper.degrade_stats sw).Sweeper.quarantined);
      Alcotest.(check bool) "never merged" true
        (Sweeper.representative sw x2 = x2))

let test_sat_budget_fault_escalates () =
  with_faults (fun () ->
      let net, x1, x2, _ = pair_net () in
      let sw = Sweeper.create ladder_opts net in
      Fault.arm ~times:1 "sat-budget";
      (* The injected zero budget refuses the first session query; the
         escalation rung (unlimited here) resumes and proves the pair. *)
      let verdict, _ = Sweeper.verify_pair ladder_opts sw x1 x2 in
      Alcotest.(check bool) "escalation recovers Equal" true
        (verdict = Sat_session.Equal);
      let d = Sweeper.degrade_stats sw in
      Alcotest.(check int) "one refusal" 1 d.Sweeper.unknowns;
      Alcotest.(check int) "one escalation" 1 d.Sweeper.escalations;
      Alcotest.(check int) "no bdd" 0 d.Sweeper.bdd_fallbacks;
      Alcotest.(check int) "fault fired" 1 (Fault.fired "sat-budget"))

let test_session_corrupt_rebuild () =
  with_faults (fun () ->
      let net, x1, x2, _ = pair_net () in
      let sw = Sweeper.create ladder_opts net in
      Fault.arm ~times:1 "session-corrupt";
      let verdict, _ = Sweeper.verify_pair ladder_opts sw x1 x2 in
      Alcotest.(check bool) "rebuilt session proves Equal" true
        (verdict = Sat_session.Equal);
      Alcotest.(check int) "one rebuild" 1
        (Sweeper.degrade_stats sw).Sweeper.session_rebuilds)

let test_session_corrupt_repeated_violation_propagates () =
  with_faults (fun () ->
      let net, x1, x2, _ = pair_net () in
      let sw = Sweeper.create ladder_opts net in
      (* Both the query and its rebuild-retry hit the fault: the second
         Violation must propagate — no infinite rebuild loop. *)
      Fault.arm ~times:2 "session-corrupt";
      (try
         ignore (Sweeper.verify_pair ladder_opts sw x1 x2);
         Alcotest.fail "second Violation was swallowed"
       with Runtime_check.Violation msg ->
         Alcotest.(check string) "violation code" "F-session-corrupt"
           (Runtime_check.violation_code msg)))

let test_gen_giveup_harmless () =
  with_faults (fun () ->
      (* Guided generation giving up on every round only loses pattern
         quality; the CEC verdict must be unaffected. *)
      Fault.arm "gen-giveup";
      let net, _, _, _ = pair_net () in
      let report = Cec.check
        { ladder_opts with Sweep_options.guided_iterations = 4 }
        net (N.copy net) in
      Alcotest.(check bool) "still equivalent" true
        (report.Cec.outcome = Cec.Equivalent))

(* ------------------------------------------------------------------ *)
(* Exec supervisor                                                     *)
(* ------------------------------------------------------------------ *)

let small_sweep_spec ?limits ?retry ~id () =
  Job.make ?limits ?retry ~id ~seed:5 ~guided_iterations:2
    (Job.Sweep (Job.Inline (let net, _, _, _ = pair_net () in net)))

let test_violation_surfaces_as_failed () =
  (* Satellite: Exec's "never raises" contract. A Violation the sweeper
     cannot absorb (the fault re-fires on the rebuilt session, again and
     again) must surface as a structured Failed carrying the violation
     code — not escape the pool. *)
  with_faults (fun () ->
      let sink, collect = Events.memory () in
      let good = small_sweep_spec ~id:1 () in
      let bad = small_sweep_spec ~id:0 () in
      (* Unlimited firings: the rebuild retry violates too, so nothing
         inside the sweeper can absorb it. Disarm before the sibling. *)
      Fault.arm "session-corrupt";
      let r = Exec.run ~events:sink ~worker:0 bad in
      Fault.reset ();
      let r2 = Exec.run ~events:sink ~worker:0 good in
      (match r.Job.status with
       | Job.Failed { message; attempts; faults } ->
           Alcotest.(check bool) "message carries the violation"
             true
             (String.length message >= 10
             && String.sub message 0 10 = "violation:");
           Alcotest.(check int) "single attempt (no retry policy)" 1 attempts;
           Alcotest.(check bool) "fault site recorded" true
             (List.mem_assoc "session-corrupt" faults)
       | s ->
           Alcotest.failf "expected Failed, got %s" (Job.status_to_string s));
      Alcotest.(check bool) "sibling unaffected" true (r2.Job.status = Job.Swept);
      let finished =
        List.filter
          (fun e ->
            match e.Events.payload with
            | Events.Finished _ -> true
            | _ -> false)
          (collect ())
      in
      Alcotest.(check int) "one Finished per job" 2 (List.length finished))

let test_worker_crash_retried () =
  with_faults (fun () ->
      Fault.arm ~times:1 "worker-crash";
      let sink, collect = Events.memory () in
      let spec =
        small_sweep_spec ~retry:(Retry_policy.with_attempts 3 Retry_policy.default)
          ~id:0 ()
      in
      let r = Exec.run ~events:sink ~worker:0 spec in
      Alcotest.(check bool) "recovered" true (r.Job.status = Job.Swept);
      Alcotest.(check int) "second attempt succeeded" 2 r.Job.attempts;
      let events = collect () in
      let retries =
        List.filter_map
          (fun e ->
            match e.Events.payload with
            | Events.Retry { attempt; cause; _ } -> Some (attempt, cause)
            | _ -> None)
          events
      in
      Alcotest.(check (list (pair int string)))
        "retry event with the injected cause"
        [ (1, "injected-fault:worker-crash") ]
        retries;
      Alcotest.(check bool) "fault event emitted" true
        (List.exists
           (fun e ->
             match e.Events.payload with
             | Events.Fault { site = "worker-crash"; count } -> count = 1
             | _ -> false)
           events))

let test_worker_crash_exhausts_attempts () =
  with_faults (fun () ->
      Fault.arm "worker-crash";
      let spec =
        small_sweep_spec ~retry:(Retry_policy.with_attempts 2 Retry_policy.default)
          ~id:0 ()
      in
      let r = Exec.run ~events:Events.null ~worker:0 spec in
      match r.Job.status with
      | Job.Failed { message; attempts; faults } ->
          Alcotest.(check string) "last cause" "injected-fault:worker-crash"
            message;
          Alcotest.(check int) "both attempts spent" 2 attempts;
          Alcotest.(check (option int)) "both firings recorded" (Some 2)
            (List.assoc_opt "worker-crash" faults)
      | s -> Alcotest.failf "expected Failed, got %s" (Job.status_to_string s))

let test_watchdog_cuts_stall_and_retries () =
  with_faults (fun () ->
      Fault.arm ~times:1 "worker-stall";
      let sink, collect = Events.memory () in
      let spec =
        small_sweep_spec
          ~limits:{ Budget.unlimited with Budget.watchdog = Some 0.05 }
          ~retry:(Retry_policy.with_attempts 2 Retry_policy.default)
          ~id:0 ()
      in
      let r = Exec.run ~events:sink ~worker:0 spec in
      Alcotest.(check bool) "stall cut off, retry succeeded" true
        (r.Job.status = Job.Swept);
      Alcotest.(check int) "two attempts" 2 r.Job.attempts;
      Alcotest.(check bool) "watchdog named as the retry cause" true
        (List.exists
           (fun e ->
             match e.Events.payload with
             | Events.Retry { cause = "watchdog"; _ } -> true
             | _ -> false)
           (collect ())))

let test_watchdog_exhaustion_is_final () =
  with_faults (fun () ->
      Fault.arm "worker-stall";
      let spec =
        small_sweep_spec
          ~limits:{ Budget.unlimited with Budget.watchdog = Some 0.05 }
          ~id:0 ()
      in
      let r = Exec.run ~events:Events.null ~worker:0 spec in
      Alcotest.(check bool) "watchdog exhaustion" true
        (r.Job.status = Job.Budget_exhausted Budget.Watchdog);
      Alcotest.(check int) "no retry without a policy" 1 r.Job.attempts)

let test_parse_fault_retried () =
  with_faults (fun () ->
      Fault.arm ~times:1 "parse";
      let spec =
        Job.make ~id:0 ~seed:5 ~guided_iterations:2
          ~retry:(Retry_policy.with_attempts 2 Retry_policy.default)
          (Job.Sweep (Job.Suite "dec"))
      in
      let r = Exec.run ~events:Events.null ~worker:0 spec in
      Alcotest.(check bool) "reload succeeded" true (r.Job.status = Job.Swept);
      Alcotest.(check int) "one retry" 2 r.Job.attempts)

(* ------------------------------------------------------------------ *)
(* Retry policy                                                        *)
(* ------------------------------------------------------------------ *)

let test_retry_policy_delays () =
  let p =
    { Retry_policy.max_attempts = 4; backoff = 0.1; multiplier = 2.0; jitter = 0.0 }
  in
  let rng = Rng.create 1 in
  Alcotest.(check (float 1e-9)) "first delay" 0.1
    (Retry_policy.delay p rng ~attempt:1);
  Alcotest.(check (float 1e-9)) "doubles" 0.2 (Retry_policy.delay p rng ~attempt:2);
  Alcotest.(check (float 1e-9)) "doubles again" 0.4
    (Retry_policy.delay p rng ~attempt:3);
  (try
     ignore (Retry_policy.delay p rng ~attempt:0);
     Alcotest.fail "attempt 0 accepted"
   with Invalid_argument _ -> ());
  (* Jitter stays within the documented band and is deterministic. *)
  let j = { p with Retry_policy.jitter = 0.5 } in
  let d1 = Retry_policy.delay j (Rng.create 7) ~attempt:1 in
  let d2 = Retry_policy.delay j (Rng.create 7) ~attempt:1 in
  Alcotest.(check (float 1e-9)) "deterministic in the rng" d1 d2;
  Alcotest.(check bool) "within the band" true (d1 >= 0.05 && d1 <= 0.15)

(* ------------------------------------------------------------------ *)
(* Pattern cache checksums                                             *)
(* ------------------------------------------------------------------ *)

let test_cache_drops_poisoned_entry () =
  with_faults (fun () ->
      let c = Pattern_cache.create () in
      Fault.arm ~times:1 "cache-poison";
      Alcotest.(check bool) "poisoned add accepted" true
        (Pattern_cache.add c [| true; false; true |]);
      (* The corruption happened after the checksum: borrow detects it,
         drops the entry and reports a miss instead of garbage. *)
      Alcotest.(check (list (array bool))) "corrupt entry dropped" []
        (Pattern_cache.borrow c ~npis:3);
      Alcotest.(check int) "dropped counted" 1 (Pattern_cache.dropped c);
      Alcotest.(check int) "no longer stored" 0 (Pattern_cache.size c);
      (* A clean entry flows through; borrowers get a private copy. *)
      Alcotest.(check bool) "clean add" true
        (Pattern_cache.add c [| false; true; false |]);
      (match Pattern_cache.borrow c ~npis:3 with
       | [ v ] ->
           v.(0) <- true (* mutating the borrow must not corrupt the cache *)
       | l -> Alcotest.failf "expected one vector, got %d" (List.length l));
      match Pattern_cache.borrow c ~npis:3 with
      | [ v ] ->
          Alcotest.(check (array bool)) "cache entry intact"
            [| false; true; false |] v
      | l -> Alcotest.failf "expected one vector, got %d" (List.length l))

(* ------------------------------------------------------------------ *)
(* Manifest and events surface                                         *)
(* ------------------------------------------------------------------ *)

let test_manifest_fault_keys () =
  let specs =
    Manifest.parse_string
      "cec dec dec retries=3 backoff=0.2 watchdog=1.5 max-conflicts=100\n"
  in
  match specs with
  | [ spec ] ->
      Alcotest.(check int) "retries" 3 spec.Job.retry.Retry_policy.max_attempts;
      Alcotest.(check (float 1e-9)) "backoff" 0.2
        spec.Job.retry.Retry_policy.backoff;
      Alcotest.(check (option (float 1e-9))) "watchdog" (Some 1.5)
        spec.Job.limits.Budget.watchdog;
      Alcotest.(check (option int)) "max-conflicts" (Some 100)
        spec.Job.max_conflicts
  | l -> Alcotest.failf "expected one spec, got %d" (List.length l)

let test_manifest_defaults_overridable () =
  let defaults =
    {
      Manifest.default_options with
      Manifest.retry = Retry_policy.with_attempts 5 Retry_policy.default;
      max_conflicts = Some 9;
    }
  in
  match Manifest.parse_string ~defaults "sweep dec\nsweep dec retries=2\n" with
  | [ a; b ] ->
      Alcotest.(check int) "baseline from defaults" 5
        a.Job.retry.Retry_policy.max_attempts;
      Alcotest.(check (option int)) "conflicts from defaults" (Some 9)
        a.Job.max_conflicts;
      Alcotest.(check int) "per-line override wins" 2
        b.Job.retry.Retry_policy.max_attempts
  | l -> Alcotest.failf "expected two specs, got %d" (List.length l)

let test_event_json_fault_phases () =
  let json payload =
    Events.to_json { Events.job = 0; label = "j"; at = 0.0; payload }
  in
  let contains needle hay =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "fault phase" true
    (contains "\"phase\":\"fault\""
       (json (Events.Fault { site = "parse"; count = 2 })));
  Alcotest.(check bool) "retry phase" true
    (contains "\"phase\":\"retry\""
       (json (Events.Retry { attempt = 1; delay = 0.1; cause = "watchdog" })));
  Alcotest.(check bool) "degrade phase" true
    (contains "\"phase\":\"degrade\""
       (json
          (Events.Degrade
             {
               unknowns = 1;
               escalations = 2;
               fresh_fallbacks = 0;
               bdd_fallbacks = 0;
               session_rebuilds = 0;
             })));
  Alcotest.(check bool) "quarantine phase" true
    (contains "\"phase\":\"quarantine\""
       (json (Events.Quarantine { a = 3; b = 9 })))

(* ------------------------------------------------------------------ *)
(* Fault matrix                                                        *)
(* ------------------------------------------------------------------ *)

let matrix_spec () =
  Job.make ~id:0 ~seed:3 ~guided_iterations:3
    ~limits:{ Budget.unlimited with Budget.watchdog = Some 0.25 }
    ~retry:(Retry_policy.with_attempts 3 Retry_policy.default)
    (Job.Cec (Job.Suite_stacked "dec", Job.Suite_stacked "dec"))

let run_matrix_job () =
  let cache = Pattern_cache.create () in
  Exec.run ~cache ~events:Events.null ~worker:0 (matrix_spec ())

let test_fault_matrix () =
  (* Every registered site, injected one shot at a time under three RNG
     seeds, over a stacked-benchmark CEC. The supervisor, ladder and
     cache checksums must deliver the exact fault-free verdict and merge
     count — degradation may cost attempts or rungs, never the answer. *)
  with_faults (fun () ->
      let baseline = run_matrix_job () in
      let base_status = Job.status_to_string baseline.Job.status in
      let base_proved = baseline.Job.sat.Sweeper.proved in
      Alcotest.(check string) "fault-free run is conclusive" "equivalent"
        base_status;
      List.iter
        (fun site ->
          List.iter
            (fun seed ->
              Fault.reset ();
              Fault.arm ~times:1 ~seed site;
              let r = run_matrix_job () in
              Fault.reset ();
              let tag = Printf.sprintf "%s/seed%d" site seed in
              Alcotest.(check string) (tag ^ ": verdict") base_status
                (Job.status_to_string r.Job.status);
              Alcotest.(check int) (tag ^ ": merge count") base_proved
                r.Job.sat.Sweeper.proved)
            [ 1; 2; 3 ])
        Fault.sites)

let () =
  Alcotest.run "simgen-fault"
    [
      ( "registry",
        [
          Alcotest.test_case "sites" `Quick test_sites;
          Alcotest.test_case "disarmed inert" `Quick test_disarmed_inert;
          Alcotest.test_case "unknown site" `Quick test_unknown_site_rejected;
          Alcotest.test_case "one-shot arm" `Quick test_arm_once;
          Alcotest.test_case "seeded determinism" `Quick test_seeded_determinism;
          Alcotest.test_case "crash raises" `Quick test_crash_raises;
          Alcotest.test_case "configure" `Quick test_configure;
          Alcotest.test_case "log" `Quick test_log;
        ] );
      ( "solve-limited",
        [
          Alcotest.test_case "zero budget" `Quick test_solve_limited_zero_budget;
          Alcotest.test_case "resume" `Quick test_solve_limited_resume;
          Alcotest.test_case "sat model" `Quick test_solve_limited_sat_model;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "bdd rescue" `Quick test_ladder_bdd_rescue;
          Alcotest.test_case "quarantine" `Quick test_ladder_quarantine;
          Alcotest.test_case "sat-budget fault" `Quick
            test_sat_budget_fault_escalates;
          Alcotest.test_case "session rebuild" `Quick test_session_corrupt_rebuild;
          Alcotest.test_case "repeated violation" `Quick
            test_session_corrupt_repeated_violation_propagates;
          Alcotest.test_case "gen-giveup harmless" `Quick test_gen_giveup_harmless;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "violation surfaces" `Quick
            test_violation_surfaces_as_failed;
          Alcotest.test_case "crash retried" `Quick test_worker_crash_retried;
          Alcotest.test_case "attempts exhausted" `Quick
            test_worker_crash_exhausts_attempts;
          Alcotest.test_case "watchdog retry" `Quick
            test_watchdog_cuts_stall_and_retries;
          Alcotest.test_case "watchdog final" `Quick
            test_watchdog_exhaustion_is_final;
          Alcotest.test_case "parse retried" `Quick test_parse_fault_retried;
          Alcotest.test_case "retry policy" `Quick test_retry_policy_delays;
        ] );
      ( "cache",
        [
          Alcotest.test_case "checksum drop" `Quick test_cache_drops_poisoned_entry;
        ] );
      ( "surface",
        [
          Alcotest.test_case "manifest keys" `Quick test_manifest_fault_keys;
          Alcotest.test_case "manifest defaults" `Quick
            test_manifest_defaults_overridable;
          Alcotest.test_case "event json" `Quick test_event_json_fault_phases;
        ] );
      ( "matrix",
        [ Alcotest.test_case "all sites x 3 seeds" `Slow test_fault_matrix ] );
    ]
