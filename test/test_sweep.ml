module N = Simgen_network.Network
module TT = Simgen_network.Truth_table
module Rng = Simgen_base.Rng
module Miter = Simgen_sweep.Miter
module Sweeper = Simgen_sweep.Sweeper
module Cec = Simgen_sweep.Cec
module Strategy = Simgen_core.Strategy
module Eq = Simgen_sim.Eq_classes
module Sweep_options = Simgen_sweep.Sweep_options

(* Default sweep options with just the seed overridden — the one spelling
   every Sweeper/Cec entry point takes. *)
let opts seed = { Sweep_options.default with Sweep_options.seed }

let tt_and2 = TT.and_ (TT.var 0 2) (TT.var 1 2)
let tt_or2 = TT.or_ (TT.var 0 2) (TT.var 1 2)
let tt_xor2 = TT.xor (TT.var 0 2) (TT.var 1 2)

let random_net rng npis ngates =
  let net = N.create () in
  let ids = ref [] in
  for _ = 1 to npis do
    ids := N.add_pi net :: !ids
  done;
  for _ = 1 to ngates do
    let pool = Array.of_list !ids in
    let arity = 1 + Rng.int rng (min 4 (Array.length pool)) in
    let fanins = Array.init arity (fun _ -> Rng.choose rng pool) in
    ids := N.add_gate net (TT.random rng arity) fanins :: !ids
  done;
  let pool = Array.of_list !ids in
  for _ = 1 to 3 do
    N.add_po net (Rng.choose rng pool)
  done;
  net

(* net with equivalent pairs (x1,x2), (y1,y2) and near-miss pair (z1,z2)
   differing only on a=b=c=d=1 *)
let candidates_net () =
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let c = N.add_pi net in
  let d = N.add_pi net in
  let x1 = N.add_gate net tt_and2 [| a; b |] in
  let x2 = N.add_gate net tt_and2 [| b; a |] in
  let y1 = N.add_gate net tt_or2 [| c; d |] in
  let y2 = N.add_gate net tt_or2 [| d; c |] in
  let z1 = N.add_gate net tt_or2 [| x1; y1 |] in
  (* z2 = z1 XOR (a&b&c&d): differs on one minterm *)
  let rare = N.add_gate net tt_and2 [| x2; y2 |] in
  let rare2 = N.add_gate net tt_and2 [| rare; c |] in
  let rare3 = N.add_gate net tt_and2 [| rare2; d |] in
  let z2 = N.add_gate net tt_xor2 [| z1; rare3 |] in
  List.iter (N.add_po net) [ z1; z2; x2; y2 ];
  (net, x1, x2, y1, y2, z1, z2)

(* ------------------------------------------------------------------ *)
(* Miter                                                               *)
(* ------------------------------------------------------------------ *)

let test_miter_equal_pair () =
  let net, x1, x2, _, _, _, _ = candidates_net () in
  match Miter.check_pair net x1 x2 with
  | Miter.Equal -> ()
  | Miter.Counterexample _ -> Alcotest.fail "commuted AND is equivalent"
  | Miter.Unknown -> Alcotest.fail "unexpected Unknown without a budget"

let test_miter_distinct_pair () =
  let net, x1, _, y1, _, _, _ = candidates_net () in
  match Miter.check_pair net x1 y1 with
  | Miter.Equal -> Alcotest.fail "AND and OR differ"
  | Miter.Counterexample vec ->
      let vals = N.eval net vec in
      Alcotest.(check bool) "cex distinguishes" true (vals.(x1) <> vals.(y1))
  | Miter.Unknown -> Alcotest.fail "unexpected Unknown without a budget"

let test_miter_near_miss () =
  let net, _, _, _, _, z1, z2 = candidates_net () in
  match Miter.check_pair net z1 z2 with
  | Miter.Equal -> Alcotest.fail "near-miss pair differs on one minterm"
  | Miter.Counterexample vec ->
      Alcotest.(check (array bool)) "the rare minterm" [| true; true; true; true |] vec
  | Miter.Unknown -> Alcotest.fail "unexpected Unknown without a budget"

let test_miter_same_node () =
  let net, x1, _, _, _, _, _ = candidates_net () in
  Alcotest.(check bool) "node vs itself" true (Miter.check_pair net x1 x1 = Miter.Equal)

let test_miter_with_subst () =
  let net, x1, x2, _, _, z1, _ = candidates_net () in
  let subst = Array.init (N.num_nodes net) Fun.id in
  subst.(x2) <- x1;
  (* After substitution the pair resolves to the same representative. *)
  Alcotest.(check bool) "resolved equal" true
    (Miter.check_pair ~subst net x1 x2 = Miter.Equal);
  (* And a distinct pair still gets a counter-example. *)
  (match Miter.check_pair ~subst net x1 z1 with
   | Miter.Counterexample _ -> ()
   | Miter.Equal -> Alcotest.fail "x1 and z1 differ"
   | Miter.Unknown -> Alcotest.fail "unexpected Unknown without a budget")

let test_miter_random_verified () =
  (* Cross-check the miter against exhaustive simulation. *)
  let rng = Rng.create 301 in
  for _ = 1 to 15 do
    let net = random_net rng 5 15 in
    let g1 = N.num_nodes net - 1 and g2 = N.num_nodes net - 2 in
    if (not (N.is_pi net g1)) && not (N.is_pi net g2) then begin
      let equal_exhaustive = ref true in
      for m = 0 to 31 do
        let vec = Array.init 5 (fun i -> (m lsr i) land 1 = 1) in
        let vals = N.eval net vec in
        if vals.(g1) <> vals.(g2) then equal_exhaustive := false
      done;
      match Miter.check_pair net g1 g2 with
      | Miter.Equal -> Alcotest.(check bool) "agrees" true !equal_exhaustive
      | Miter.Counterexample vec ->
          let vals = N.eval net vec in
          Alcotest.(check bool) "valid cex" true (vals.(g1) <> vals.(g2))
      | Miter.Unknown -> Alcotest.fail "unexpected Unknown without a budget"
    end
  done

let test_miter_certified () =
  let net, x1, x2, y1, _, z1, z2 = candidates_net () in
  (* Equal pair: UNSAT answer with a checked DRUP proof. *)
  (match Miter.check_pair_certified net x1 x2 with
   | Miter.Equal, valid -> Alcotest.(check bool) "proof checks" true valid
   | Miter.Counterexample _, _ -> Alcotest.fail "equal pair"
   | Miter.Unknown, _ -> Alcotest.fail "unexpected Unknown without a budget");
  (* Distinct pair: counter-example validated by simulation. *)
  (match Miter.check_pair_certified net x1 y1 with
   | Miter.Counterexample _, valid ->
       Alcotest.(check bool) "cex validated" true valid
   | Miter.Equal, _ -> Alcotest.fail "distinct pair"
   | Miter.Unknown, _ -> Alcotest.fail "unexpected Unknown without a budget");
  (* Near-miss: both outcomes certified across random nets too. *)
  match Miter.check_pair_certified net z1 z2 with
  | Miter.Counterexample _, valid ->
      Alcotest.(check bool) "near-miss certified" true valid
  | Miter.Equal, _ -> Alcotest.fail "near-miss differs"
  | Miter.Unknown, _ -> Alcotest.fail "unexpected Unknown without a budget"

let test_miter_certified_random () =
  let rng = Rng.create 501 in
  for _ = 1 to 15 do
    let net = random_net rng 5 20 in
    let g1 = N.num_nodes net - 1 and g2 = N.num_nodes net - 2 in
    if (not (N.is_pi net g1)) && not (N.is_pi net g2) then
      let _, valid = Miter.check_pair_certified net g1 g2 in
      Alcotest.(check bool) "certificate valid" true valid
  done

let test_po_miter () =
  let rng = Rng.create 307 in
  let net1 = random_net rng 4 15 in
  let net2 = N.copy net1 in
  for i = 0 to N.num_pos net1 - 1 do
    Alcotest.(check bool) "identical nets equal" true
      (Miter.check_po_pair net1 net2 i = Miter.Equal)
  done

(* ------------------------------------------------------------------ *)
(* Sweeper                                                             *)
(* ------------------------------------------------------------------ *)

let test_random_rounds_reduce_cost () =
  let net, _, _, _, _, _, _ = candidates_net () in
  let sw = Sweeper.create (opts 1) net in
  let c0 = Sweeper.cost sw in
  Sweeper.random_round sw;
  Alcotest.(check bool) "cost drops from initial" true (Sweeper.cost sw < c0)

let test_sat_sweep_resolves_everything () =
  let net, x1, x2, y1, y2, z1, z2 = candidates_net () in
  let sw = Sweeper.create (opts 1) net in
  Sweeper.random_round sw;
  let stats = Sweeper.sat_sweep (opts 1) sw in
  (* After sweeping, every remaining class has a single representative. *)
  List.iter
    (fun cls ->
      let reps = List.sort_uniq compare (List.map (Sweeper.representative sw) cls) in
      Alcotest.(check int) "single rep per class" 1 (List.length reps))
    (Eq.classes (Sweeper.classes sw));
  (* The true equivalences got merged... *)
  Alcotest.(check int) "x pair merged" (Sweeper.representative sw x1)
    (Sweeper.representative sw x2);
  Alcotest.(check int) "y pair merged" (Sweeper.representative sw y1)
    (Sweeper.representative sw y2);
  (* ...and the near-miss pair did not. *)
  Alcotest.(check bool) "near-miss separated" true
    (Sweeper.representative sw z1 <> Sweeper.representative sw z2);
  Alcotest.(check bool) "some calls" true (stats.Sweeper.calls > 0);
  Alcotest.(check bool) "proofs + disproofs = calls" true
    (stats.Sweeper.proved + stats.Sweeper.disproved = stats.Sweeper.calls)

let test_guided_round_splits_near_miss () =
  (* The near-miss pair (z1, z2) survives random simulation with high
     probability; guided simulation must split it without SAT. *)
  let hits = ref 0 in
  for seed = 1 to 10 do
    let net, _, _, _, _, z1, z2 = candidates_net () in
    let sw = Sweeper.create (opts seed) net in
    Sweeper.random_round sw;
    let same_class id1 id2 =
      match Eq.class_of (Sweeper.classes sw) id1 with
      | [] -> false
      | cls -> List.mem id2 cls
    in
    if same_class z1 z2 then begin
      ignore
        (Sweeper.run_guided
           { (opts seed) with Sweep_options.guided_iterations = 10 }
           sw);
      if not (same_class z1 z2) then incr hits
    end
    else incr hits (* random already split it: fine *)
  done;
  Alcotest.(check bool) "guided separates the near-miss usually" true (!hits >= 7)

let test_guided_stats_accumulate () =
  let net, _, _, _, _, _, _ = candidates_net () in
  let sw = Sweeper.create (opts 3) net in
  Sweeper.random_round sw;
  let d1 = Sweeper.guided_round sw Strategy.AI_RD in
  let d2 = Sweeper.guided_round sw Strategy.AI_RD in
  let total = Sweeper.guided_stats sw in
  Alcotest.(check int) "iterations accumulate"
    (d1.Sweeper.iterations + d2.Sweeper.iterations)
    total.Sweeper.iterations;
  Alcotest.(check bool) "time accumulates" true
    (total.Sweeper.guided_time >= d1.Sweeper.guided_time)

let test_cost_history_monotone () =
  let rng = Rng.create 311 in
  let net = random_net rng 5 30 in
  let sw = Sweeper.create (opts 7) net in
  for _ = 1 to 3 do
    Sweeper.random_round sw
  done;
  ignore
    (Sweeper.run_guided
       { (opts 7) with Sweep_options.guided_iterations = 5 }
       sw);
  let history = Sweeper.cost_history sw in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "non-increasing" true (b <= a);
        check rest
    | _ -> ()
  in
  check history

let test_sat_sweep_budget () =
  let net, _, _, _, _, _, _ = candidates_net () in
  let sw = Sweeper.create (opts 1) net in
  Sweeper.random_round sw;
  let stats =
    Sweeper.sat_sweep
      { (opts 1) with Sweep_options.max_sat_calls = Some 1 }
      sw
  in
  Alcotest.(check int) "budget respected" 1 stats.Sweeper.calls

let test_sweep_random_networks_sound () =
  (* On random networks: after sat_sweep, merged pairs are truly
     equivalent (checked exhaustively). *)
  let rng = Rng.create 313 in
  for _ = 1 to 8 do
    let net = random_net rng 5 25 in
    let sw = Sweeper.create (opts 11) net in
    Sweeper.random_round sw;
    ignore (Sweeper.sat_sweep (opts 11) sw);
    N.iter_gates net (fun id ->
        let rep = Sweeper.representative sw id in
        if rep <> id then
          for m = 0 to 31 do
            let vec = Array.init 5 (fun i -> (m lsr i) land 1 = 1) in
            let vals = N.eval net vec in
            Alcotest.(check bool) "merged nodes equivalent" vals.(rep) vals.(id)
          done)
  done

(* Two equivalent pairs (commuted AND, commuted OR): generation can never
   produce a useful vector for either class, so every guided round counts
   one failure per class until both are given up. *)
let unsplittable_pairs_net () =
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let g1 = N.add_gate net tt_and2 [| a; b |] in
  let g2 = N.add_gate net tt_and2 [| b; a |] in
  let g3 = N.add_gate net tt_or2 [| a; b |] in
  let g4 = N.add_gate net tt_or2 [| b; a |] in
  List.iter (N.add_po net) [ g1; g2; g3; g4 ];
  (net, g1, g3)

let test_gen_failures_give_up () =
  let net, g1, g3 = unsplittable_pairs_net () in
  let sw = Sweeper.create (opts 3) net in
  Alcotest.(check (list (pair int int)))
    "no failures before any guided round" []
    (Sweeper.gen_failure_counts sw);
  (* a=1, b=0 splits ANDs (0) from ORs (1): classes {g1,g2} and {g3,g4}
     with keys g1 and g3 — each key starts with a fresh counter. *)
  Sweeper.apply_vector sw [| true; false |];
  Alcotest.(check int) "two classes" 2 (Eq.num_classes (Sweeper.classes sw));
  for _ = 1 to Sweeper.max_class_failures do
    ignore (Sweeper.guided_round sw Strategy.AI_DC_MFFC)
  done;
  Alcotest.(check (list (pair int int)))
    "one failure per class per round, capped at the give-up limit"
    [ (g1, Sweeper.max_class_failures); (g3, Sweeper.max_class_failures) ]
    (Sweeper.gen_failure_counts sw);
  (* Both classes are given up now: further rounds skip them without
     attempting generation, so the counters stay frozen at the cap. *)
  let d = Sweeper.guided_round sw Strategy.AI_DC_MFFC in
  Alcotest.(check int) "both classes skipped" 2 d.Sweeper.skipped;
  Alcotest.(check int) "no useful vectors" 0 d.Sweeper.vectors;
  Alcotest.(check (list (pair int int)))
    "skipped classes accrue no further failures"
    [ (g1, Sweeper.max_class_failures); (g3, Sweeper.max_class_failures) ]
    (Sweeper.gen_failure_counts sw)

let test_gen_failures_fresh_key_after_split () =
  (* Give up on the one big class (key = smallest gate), then split it:
     the part that loses the smallest member gets a new key, hence a fresh
     counter, and generation is attempted for it again. *)
  let net, g1, g3 = unsplittable_pairs_net () in
  let sw = Sweeper.create (opts 3) net in
  (* All four gates share one class (key g1). Its OUTgold assignment
     alternates along the class, pairing equal-function nodes with equal
     golds and opposite-function nodes across — whether generation
     succeeds is heuristic, so drive the counter via rounds until the
     class either splits or is given up. *)
  let rec drive n =
    if n > 0 && Eq.num_classes (Sweeper.classes sw) = 1 then begin
      ignore (Sweeper.guided_round sw Strategy.AI_DC_MFFC);
      drive (n - 1)
    end
  in
  drive (Sweeper.max_class_failures + 1);
  (* Force the split regardless of what the generator did. *)
  Sweeper.apply_vector sw [| true; false |];
  Alcotest.(check int) "split into the two pairs" 2
    (Eq.num_classes (Sweeper.classes sw));
  (* The OR pair {g3, g4} never had its own key before the split: its
     counter starts fresh, strictly below the give-up cap. *)
  let or_failures =
    Option.value ~default:0
      (List.assoc_opt g3 (Sweeper.gen_failure_counts sw))
  in
  Alcotest.(check bool) "fresh counter for the new key" true
    (or_failures < Sweeper.max_class_failures);
  (* One more round attempts generation for the fresh class: its counter
     moves, proving it was not inherited from the given-up big class. *)
  ignore (Sweeper.guided_round sw Strategy.AI_DC_MFFC);
  let or_failures' =
    Option.value ~default:0
      (List.assoc_opt g3 (Sweeper.gen_failure_counts sw))
  in
  Alcotest.(check int) "fresh class attempted again" (or_failures + 1)
    or_failures';
  ignore g1

let test_sat_sweep_should_stop () =
  let net, _, _, _, _, _, _ = candidates_net () in
  let sw = Sweeper.create (opts 1) net in
  Sweeper.random_round sw;
  let stats =
    Sweeper.sat_sweep
      { (opts 1) with Sweep_options.should_stop = (fun () -> true) }
      sw
  in
  Alcotest.(check int) "no calls when stopped upfront" 0 stats.Sweeper.calls;
  (* A later unrestricted sweep still resolves everything. *)
  ignore (Sweeper.sat_sweep (opts 1) sw);
  List.iter
    (fun cls ->
      let reps =
        List.sort_uniq compare (List.map (Sweeper.representative sw) cls)
      in
      Alcotest.(check int) "resolved after resume" 1 (List.length reps))
    (Eq.classes (Sweeper.classes sw))

let test_sat_sweep_on_cex () =
  let net, _, _, _, _, _, _ = candidates_net () in
  let sw = Sweeper.create (opts 1) net in
  Sweeper.random_round sw;
  let cexs = ref [] in
  let stats =
    Sweeper.sat_sweep
      { (opts 1) with
        Sweep_options.on_cex = Some (fun v -> cexs := v :: !cexs) }
      sw
  in
  Alcotest.(check int) "one callback per disproof" stats.Sweeper.disproved
    (List.length !cexs);
  List.iter
    (fun vec ->
      Alcotest.(check int) "full PI vectors" (N.num_pis net) (Array.length vec))
    !cexs

let test_apply_vectors_matches_one_by_one () =
  let rng = Rng.create 811 in
  let net = random_net rng 5 30 in
  let vecs =
    List.init 100 (fun _ -> Array.init 5 (fun _ -> Rng.bool rng))
  in
  let sw1 = Sweeper.create (opts 1) net in
  Sweeper.apply_vectors sw1 vecs;
  let sw2 = Sweeper.create (opts 1) net in
  List.iter (Sweeper.apply_vector sw2) vecs;
  (* Refinement is grouping-independent: the partitions agree. *)
  Alcotest.(check int) "same cost" (Sweeper.cost sw2) (Sweeper.cost sw1);
  Alcotest.(check int) "word-packed: 100 vectors in 2 passes" 2
    (List.length (Sweeper.cost_history sw1))

(* ------------------------------------------------------------------ *)
(* Merged-network extraction and counter-example minimization          *)
(* ------------------------------------------------------------------ *)

let test_merged_network_shrinks_and_preserves () =
  let net, _, _, _, _, _, _ = candidates_net () in
  let sw = Sweeper.create (opts 1) net in
  Sweeper.random_round sw;
  ignore (Sweeper.sat_sweep (opts 1) sw);
  let merged = Sweeper.merged_network sw in
  (* The two proven-equivalent pairs disappear. *)
  Alcotest.(check bool) "fewer gates" true
    (N.num_gates merged < N.num_gates net);
  for m = 0 to 15 do
    let vec = Array.init 4 (fun i -> (m lsr i) land 1 = 1) in
    Alcotest.(check (array bool)) "functionally equivalent"
      (N.eval_pos net vec) (N.eval_pos merged vec)
  done

let test_merged_network_random () =
  let rng = Rng.create 401 in
  for _ = 1 to 8 do
    let net = random_net rng 5 25 in
    let sw = Sweeper.create (opts 9) net in
    Sweeper.random_round sw;
    ignore (Sweeper.sat_sweep (opts 9) sw);
    let merged = Sweeper.merged_network sw in
    Alcotest.(check bool) "no growth" true (N.num_gates merged <= N.num_gates net);
    for m = 0 to 31 do
      let vec = Array.init 5 (fun i -> (m lsr i) land 1 = 1) in
      Alcotest.(check (array bool)) "equivalent" (N.eval_pos net vec)
        (N.eval_pos merged vec)
    done
  done

let test_minimize_counterexample () =
  let net, _, _, _, _, z1, z2 = candidates_net () in
  (* Any vector with a=b=c=d=1 distinguishes z1/z2; start from it and
     check minimization keeps the distinction with a locally minimal
     vector. *)
  let cex = [| true; true; true; true |] in
  let minimized = Simgen_sweep.Minimize.distinguishing net z1 z2 cex in
  let vals = N.eval net minimized in
  Alcotest.(check bool) "still distinguishes" true (vals.(z1) <> vals.(z2));
  (* Local minimality: flipping any remaining 1-bit to 0 loses it. *)
  Array.iteri
    (fun i v ->
      if v then begin
        let probe = Array.copy minimized in
        probe.(i) <- false;
        let vals = N.eval net probe in
        Alcotest.(check bool) "locally minimal" true (vals.(z1) = vals.(z2))
      end)
    minimized

let test_minimize_rejects_non_cex () =
  let net, x1, _, y1, _, _, _ = candidates_net () in
  (* 00..0 gives x1 = y1 = 0: not a counter-example. *)
  Alcotest.check_raises "not a cex"
    (Invalid_argument "Minimize.distinguishing: not a counter-example")
    (fun () ->
      ignore
        (Simgen_sweep.Minimize.distinguishing net x1 y1
           (Array.make 4 false)))

let test_essential_bits () =
  let net, _, _, _, _, z1, z2 = candidates_net () in
  let bits =
    Simgen_sweep.Minimize.essential_bits net z1 z2 [| true; true; true; true |]
  in
  (* The pair differs only on a=b=c=d=1, so all four bits are essential. *)
  Alcotest.(check (list int)) "kernel" [ 0; 1; 2; 3 ] bits

(* ------------------------------------------------------------------ *)
(* SAT-based vector generation and 1-distance baselines                *)
(* ------------------------------------------------------------------ *)

let test_sat_vectors_realize_outgold () =
  let net, x1, _, y1, _, z1, z2 = candidates_net () in
  (match Simgen_sweep.Sat_vectors.generate net [ (x1, false); (y1, true) ] with
   | Some vec ->
       let vals = N.eval net vec in
       Alcotest.(check bool) "x1=0" false vals.(x1);
       Alcotest.(check bool) "y1=1" true vals.(y1)
   | None -> Alcotest.fail "satisfiable combination rejected");
  (* The near-miss pair: only the rare minterm (where z1 = 1, z2 = 0)
     splits it. *)
  match Simgen_sweep.Sat_vectors.generate net [ (z1, true); (z2, false) ] with
  | Some vec ->
      let vals = N.eval net vec in
      Alcotest.(check bool) "split realized" true (vals.(z1) <> vals.(z2))
  | None -> Alcotest.fail "the rare minterm exists"

let test_sat_vectors_unsat () =
  let net, x1, x2, _, _, _, _ = candidates_net () in
  (* Equivalent nodes cannot take opposite values. *)
  Alcotest.(check bool) "unsat combination" true
    (Simgen_sweep.Sat_vectors.generate net [ (x1, false); (x2, true) ] = None)

let test_sat_vectors_pairwise_fallback () =
  let net, x1, x2, y1, _, _, _ = candidates_net () in
  (* x1 and x2 equivalent (conflicting golds), but the (x1, y1) pair is
     realizable: pairwise must find it. *)
  match
    Simgen_sweep.Sat_vectors.generate_pairwise net
      [ (x1, false); (x2, true); (y1, true) ]
  with
  | Some vec ->
      let vals = N.eval net vec in
      Alcotest.(check bool) "some opposite pair realized" true
        ((vals.(x1) = false && vals.(y1) = true)
        || (vals.(x2) = true && vals.(x1) = false))
  | None -> Alcotest.fail "pairwise fallback failed"

let test_sat_guided_round_splits () =
  let net, _, _, _, _, z1, z2 = candidates_net () in
  let sw = Sweeper.create (opts 5) net in
  Sweeper.random_round sw;
  let g =
    Sweeper.run_sat_guided
      { (opts 5) with Sweep_options.guided_iterations = 5 }
      sw
  in
  Alcotest.(check bool) "solver calls counted" true (g.Sweeper.gen_sat_calls > 0);
  (* The exact generator must split the near-miss pair. *)
  let same_class =
    match Eq.class_of (Sweeper.classes sw) z1 with
    | [] -> false
    | cls -> List.mem z2 cls
  in
  Alcotest.(check bool) "near-miss split by SAT vectors" false same_class

let test_one_distance_refines () =
  let net, _, _, _, _, z1, z2 = candidates_net () in
  let sw = Sweeper.create (opts 5) net in
  (* The rare minterm is 1111; a 1-distance neighbourhood of 0111 contains
     it, so applying it must split the near-miss pair. *)
  Sweeper.apply_one_distance sw [| false; true; true; true |];
  let same_class =
    match Eq.class_of (Sweeper.classes sw) z1 with
    | [] -> false
    | cls -> List.mem z2 cls
  in
  Alcotest.(check bool) "split by a 1-distance flip" false same_class

let prop_sat_vectors_sound =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"SAT vectors realize their OUTgold constraints"
       ~count:150
       QCheck2.Gen.(int_range 0 1_000_000)
       (fun seed ->
         let rng = Rng.create seed in
         let net = random_net rng 5 20 in
         let gates = ref [] in
         N.iter_gates net (fun id -> gates := id :: !gates);
         let pool = Array.of_list !gates in
         let targets =
           List.sort_uniq compare
             (List.init (min 3 (Array.length pool)) (fun _ ->
                  Rng.choose rng pool))
         in
         let outgold = List.map (fun id -> (id, Rng.bool rng)) targets in
         match Simgen_sweep.Sat_vectors.generate ~rng net outgold with
         | Some vec ->
             let vals = N.eval net vec in
             List.for_all (fun (id, gold) -> vals.(id) = gold) outgold
         | None ->
             (* UNSAT answer: cross-check exhaustively. *)
             let ok = ref true in
             for m = 0 to 31 do
               let vec = Array.init 5 (fun i -> (m lsr i) land 1 = 1) in
               let vals = N.eval net vec in
               if List.for_all (fun (id, gold) -> vals.(id) = gold) outgold
               then ok := false
             done;
             !ok))

let test_outgold_strategy_plumbed () =
  (* Random_balanced OUTgold still yields sound sweeping. *)
  let net, _, _, _, _, _, _ = candidates_net () in
  let o =
    { (opts 5) with
      Sweep_options.outgold = Simgen_core.Outgold.Random_balanced;
      guided_iterations = 5 }
  in
  let sw = Sweeper.create o net in
  Sweeper.random_round sw;
  ignore (Sweeper.run_guided o sw);
  let stats = Sweeper.sat_sweep o sw in
  Alcotest.(check bool) "flow completes" true (stats.Sweeper.calls >= 0);
  List.iter
    (fun cls ->
      let reps =
        List.sort_uniq compare (List.map (Sweeper.representative sw) cls)
      in
      Alcotest.(check int) "resolved" 1 (List.length reps))
    (Eq.classes (Sweeper.classes sw))

(* ------------------------------------------------------------------ *)
(* CEC                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cec_equivalent_copies () =
  let rng = Rng.create 317 in
  let net1 = random_net rng 5 30 in
  let net2 = N.copy net1 in
  let report = Cec.check (opts 5) net1 net2 in
  Alcotest.(check bool) "equivalent" true (report.Cec.outcome = Cec.Equivalent)

let test_cec_restructured_copy () =
  (* Equivalence survives re-association through the AIG pipeline. *)
  let rng = Rng.create 331 in
  let aig = Simgen_aig.Convert.aig_of_network (random_net rng 5 30) in
  let net1 = Simgen_mapping.Lut_mapper.map ~k:4 aig in
  let net2 =
    Simgen_mapping.Lut_mapper.map ~k:6 (Simgen_aig.Rewrite.shuffle_rebuild rng aig)
  in
  let report = Cec.check (opts 5) net1 net2 in
  Alcotest.(check bool) "equivalent after restructuring" true
    (report.Cec.outcome = Cec.Equivalent)

let test_cec_detects_mutation () =
  let rng = Rng.create 337 in
  let net1 = random_net rng 5 30 in
  (* Mutate one gate: flip its function. *)
  let net2 = N.create () in
  let flipped = ref (-1) in
  N.iter_nodes net1 (fun id ->
      match N.kind net1 id with
      | N.Pi _ -> ignore (N.add_pi net2)
      | N.Gate f ->
          let f' =
            if !flipped < 0 && not (N.is_pi net1 id) then begin
              flipped := id;
              TT.not_ f
            end
            else f
          in
          ignore (N.add_gate net2 f' (N.fanins net1 id)));
  Array.iter (fun id -> N.add_po net2 id) (N.pos net1);
  (* Flipping an internal gate that reaches a PO must be caught. *)
  let reaches_po =
    Array.exists
      (fun po -> List.mem !flipped (Simgen_network.Cone.fanin_cone net1 po))
      (N.pos net1)
  in
  if reaches_po then begin
    let report = Cec.check (opts 5) net1 net2 in
    match report.Cec.outcome with
    | Cec.Not_equivalent { po; vector } ->
        let v1 = N.eval_pos net1 vector and v2 = N.eval_pos net2 vector in
        Alcotest.(check bool) "witness valid" true (v1.(po) <> v2.(po))
    | Cec.Equivalent -> Alcotest.fail "mutation missed"
    | Cec.Inconclusive _ -> Alcotest.fail "unexpected Inconclusive"
  end

let test_cec_near_miss_mutation () =
  (* A rare-cube XOR on a PO: random simulation misses it; CEC must not. *)
  let net1 = N.create () in
  let pis = Array.init 12 (fun _ -> N.add_pi net1) in
  let and_tree net =
    let rec go = function
      | [] -> assert false
      | [ x ] -> x
      | x :: y :: rest -> go (rest @ [ N.add_gate net tt_and2 [| x; y |] ])
    in
    go (Array.to_list pis)
  in
  let o1 = N.add_gate net1 tt_or2 [| pis.(0); pis.(1) |] in
  N.add_po net1 o1;
  let net2 = N.create () in
  let pis2 = Array.init 12 (fun _ -> N.add_pi net2) in
  ignore pis2;
  let rare =
    let rec go acc i =
      if i >= 12 then acc
      else go (N.add_gate net2 tt_and2 [| acc; i |]) (i + 1)
    in
    go 0 1
  in
  let o2' = N.add_gate net2 tt_or2 [| 0; 1 |] in
  let o2 = N.add_gate net2 tt_xor2 [| o2'; rare |] in
  N.add_po net2 o2;
  ignore (and_tree net1);
  let report = Cec.check (opts 5) net1 net2 in
  (match report.Cec.outcome with
   | Cec.Not_equivalent { vector; _ } ->
       Alcotest.(check bool) "rare input found" true
         (Array.for_all Fun.id vector)
   | Cec.Equivalent -> Alcotest.fail "near-miss missed"
   | Cec.Inconclusive _ -> Alcotest.fail "unexpected Inconclusive")

let test_cec_join () =
  let rng = Rng.create 347 in
  let net1 = random_net rng 4 10 in
  let net2 = random_net rng 4 12 in
  let joined, pos1, pos2 = Cec.join net1 net2 in
  Alcotest.(check int) "shared pis" 4 (N.num_pis joined);
  Alcotest.(check int) "all pos" (N.num_pos net1 + N.num_pos net2)
    (N.num_pos joined);
  for m = 0 to 15 do
    let vec = Array.init 4 (fun i -> (m lsr i) land 1 = 1) in
    let vals = N.eval joined vec in
    let e1 = N.eval_pos net1 vec and e2 = N.eval_pos net2 vec in
    Array.iteri
      (fun i id -> Alcotest.(check bool) "net1 po preserved" e1.(i) vals.(id))
      pos1;
    Array.iteri
      (fun i id -> Alcotest.(check bool) "net2 po preserved" e2.(i) vals.(id))
      pos2
  done

let test_cec_report_history () =
  let rng = Rng.create 353 in
  let net1 = random_net rng 5 30 in
  let net2 = N.copy net1 in
  let report = Cec.check (opts 5) net1 net2 in
  Alcotest.(check bool) "history recorded" true (report.Cec.cost_history <> []);
  Alcotest.(check int) "final cost is the last sample"
    (List.nth report.Cec.cost_history
       (List.length report.Cec.cost_history - 1))
    report.Cec.final_cost

(* ------------------------------------------------------------------ *)
(* Incremental SAT sessions                                            *)
(* ------------------------------------------------------------------ *)

module Sat_session = Simgen_sweep.Sat_session
module Suite = Simgen_benchgen.Suite

(* All gate pairs of a small net, in a deterministic order. *)
let gate_pairs net =
  let gates = ref [] in
  N.iter_gates net (fun id -> gates := id :: !gates);
  let gates = List.rev !gates in
  List.concat_map
    (fun a -> List.filter_map (fun b -> if a < b then Some (a, b) else None) gates)
    gates

let check_differential net pairs seed =
  let session = Sat_session.create ~rng:(Rng.create seed) net in
  List.iter
    (fun (a, b) ->
      let fresh_verdict, _ =
        Miter.check_pair_fresh ~rng:(Rng.create (seed lxor 0xF)) net a b
      in
      let session_verdict = Sat_session.check_pair session a b in
      match (fresh_verdict, session_verdict) with
      | Miter.Equal, Sat_session.Equal -> ()
      | Miter.Counterexample v1, Sat_session.Counterexample v2 ->
          (* Counter-example vectors may differ (different models); both
             must actually distinguish the pair. *)
          let d vec =
            let vals = N.eval net vec in
            vals.(a) <> vals.(b)
          in
          Alcotest.(check bool) "fresh cex distinguishes" true (d v1);
          Alcotest.(check bool) "session cex distinguishes" true (d v2)
      | Miter.Equal, Sat_session.Counterexample _ ->
          Alcotest.failf "pair (%d,%d): fresh says Equal, session disagrees" a b
      | Miter.Counterexample _, Sat_session.Equal ->
          Alcotest.failf "pair (%d,%d): session says Equal, fresh disagrees" a b
      | Miter.Unknown, _ | _, Sat_session.Unknown ->
          Alcotest.failf "pair (%d,%d): unexpected Unknown without a budget" a b)
    pairs

let test_session_vs_fresh_differential () =
  (* Identical verdicts from the incremental session and the fresh-solver
     reference, across >= 3 seeds, on the fixture, random nets and suite
     benchmarks. *)
  List.iter
    (fun seed ->
      let net, _, _, _, _, _, _ = candidates_net () in
      check_differential net (gate_pairs net) seed;
      let rng = Rng.create (seed * 13) in
      let rnet = random_net rng 5 12 in
      check_differential rnet (gate_pairs rnet) seed)
    [ 101; 202; 303 ];
  List.iter
    (fun bench ->
      let net = Suite.lut_network bench in
      (* A slice of pairs keeps the quadratic blow-up in check. *)
      let pairs = List.filteri (fun i _ -> i mod 97 = 0) (gate_pairs net) in
      List.iter (fun seed -> check_differential net pairs seed) [ 11; 22; 33 ])
    [ "apex2"; "cps" ]

let test_session_retirement () =
  (* Every solver-backed query retires its miter, and retired miters do
     not leak constraints: a disproved pair stays provable as different,
     an equal pair stays equal, and nothing is re-encoded in between. *)
  let net, x1, x2, _, _, z1, _ = candidates_net () in
  let session = Sat_session.create ~rng:(Rng.create 5) net in
  (match Sat_session.check_pair session x1 z1 with
   | Sat_session.Counterexample _ -> ()
   | Sat_session.Equal -> Alcotest.fail "x1 and z1 differ"
   | Sat_session.Unknown -> Alcotest.fail "unexpected Unknown without a budget");
  (match Sat_session.check_pair session x1 x2 with
   | Sat_session.Equal -> ()
   | Sat_session.Counterexample _ -> Alcotest.fail "commuted AND is equivalent"
   | Sat_session.Unknown -> Alcotest.fail "unexpected Unknown without a budget");
  let s1 = Sat_session.stats session in
  Alcotest.(check int) "every query retired its miter" s1.Sat_session.queries
    s1.Sat_session.retired;
  Alcotest.(check int) "one proved" 1 s1.Sat_session.proved;
  Alcotest.(check int) "one disproved" 1 s1.Sat_session.disproved;
  (* Repeat the queries: same verdicts, no new encodings. *)
  (match Sat_session.check_pair session x1 z1 with
   | Sat_session.Counterexample _ -> ()
   | Sat_session.Equal -> Alcotest.fail "retired miter leaked a constraint"
   | Sat_session.Unknown -> Alcotest.fail "unexpected Unknown without a budget");
  (match Sat_session.check_pair session x1 x2 with
   | Sat_session.Equal -> ()
   | Sat_session.Counterexample _ -> Alcotest.fail "equality clause lost"
   | Sat_session.Unknown -> Alcotest.fail "unexpected Unknown without a budget");
  let s2 = Sat_session.stats session in
  Alcotest.(check int) "cones encoded once" s1.Sat_session.encoded
    s2.Sat_session.encoded;
  Alcotest.(check int) "still fully retired" s2.Sat_session.queries
    s2.Sat_session.retired

let test_session_reencodes_after_merge () =
  (* h1 = OR(g1,a) and h2 = OR(g2,a) become structurally identical once
     g2 is merged into g1; proving them must re-encode h2 (or h1) over
     the new fanin variable. *)
  let net = N.create () in
  let a = N.add_pi net in
  let b = N.add_pi net in
  let g1 = N.add_gate net tt_and2 [| a; b |] in
  let g2 = N.add_gate net tt_and2 [| b; a |] in
  let h1 = N.add_gate net tt_or2 [| g1; a |] in
  let h2 = N.add_gate net tt_or2 [| g2; a |] in
  let k = N.add_gate net tt_xor2 [| a; b |] in
  List.iter (N.add_po net) [ h1; h2; k ];
  let subst = Array.init (N.num_nodes net) Fun.id in
  let session = Sat_session.create ~subst ~rng:(Rng.create 9) net in
  (* Encode h2's cone (over g2) before the merge. *)
  (match Sat_session.check_pair session h2 k with
   | Sat_session.Counterexample _ -> ()
   | Sat_session.Equal -> Alcotest.fail "h2 and xor differ"
   | Sat_session.Unknown -> Alcotest.fail "unexpected Unknown without a budget");
  (match Sat_session.check_pair session g1 g2 with
   | Sat_session.Equal -> subst.(g2) <- g1
   | Sat_session.Counterexample _ -> Alcotest.fail "commuted AND is equivalent"
   | Sat_session.Unknown -> Alcotest.fail "unexpected Unknown without a budget");
  let before = Sat_session.stats session in
  (match Sat_session.check_pair session h1 h2 with
   | Sat_session.Equal -> ()
   | Sat_session.Counterexample _ ->
       Alcotest.fail "equal after the merge of their fanins"
   | Sat_session.Unknown -> Alcotest.fail "unexpected Unknown without a budget");
  let after = Sat_session.stats session in
  Alcotest.(check bool) "the merge forced a re-encoding" true
    (after.Sat_session.reencoded > before.Sat_session.reencoded)

let final_partition sw net =
  let parts = ref [] in
  N.iter_gates net (fun id -> parts := Sweeper.representative sw id :: !parts);
  !parts

let sweep_partition opts net =
  let sw = Sweeper.create opts net in
  Sweeper.random_round sw;
  ignore (Sweeper.run_guided opts sw);
  let s = Sweeper.sat_sweep opts sw in
  (final_partition sw net, s)

let test_sweep_routes_agree () =
  (* Full flow, fresh vs incremental vs certified: identical final merge
     partitions (and call counts) across seeds and networks. *)
  let nets =
    (let net, _, _, _, _, _, _ = candidates_net () in
     [ net ])
    @ List.map
        (fun s -> random_net (Rng.create s) 5 25)
        [ 41; 42; 43 ]
  in
  List.iter
    (fun net ->
      List.iter
        (fun seed ->
          let opts seed =
            { Sweep_options.default with Sweep_options.seed;
              guided_iterations = 5 }
          in
          let inc, s_inc =
            sweep_partition { (opts seed) with Sweep_options.incremental = true } net
          in
          let fr, s_fr =
            sweep_partition { (opts seed) with Sweep_options.incremental = false } net
          in
          let cert, _ =
            sweep_partition { (opts seed) with Sweep_options.certify = true } net
          in
          let nogc, s_nogc =
            sweep_partition
              { (opts seed) with Sweep_options.session_gc = false }
              net
          in
          Alcotest.(check bool) "incremental = fresh partition" true (inc = fr);
          Alcotest.(check bool) "certified partition too" true (inc = cert);
          Alcotest.(check bool) "GC-disabled partition too" true (inc = nogc);
          Alcotest.(check int) "GC never changes verdict counts"
            s_nogc.Sweeper.proved s_inc.Sweeper.proved;
          (* Counter-example sequences (and so call counts) may differ
             between routes; the number of proved merges cannot — it is
             [gates - true classes] either way. *)
          Alcotest.(check int) "same proved merges" s_fr.Sweeper.proved
            s_inc.Sweeper.proved)
        [ 1; 7; 19 ])
    nets

let test_cec_with_fresh_route () =
  (* Cec.check agrees across routes on an equivalent copy. *)
  let rng = Rng.create 777 in
  let net1 = random_net rng 5 25 in
  let net2 = N.copy net1 in
  let outcome opts = (Cec.check opts net1 net2).Cec.outcome in
  let base = { Sweep_options.default with Sweep_options.guided_iterations = 5 } in
  Alcotest.(check bool) "incremental equivalent" true
    (outcome base = Cec.Equivalent);
  Alcotest.(check bool) "fresh route agrees" true
    (outcome { base with Sweep_options.incremental = false } = Cec.Equivalent)

let () =
  Alcotest.run "sweep"
    [
      ( "miter",
        [
          Alcotest.test_case "equal pair" `Quick test_miter_equal_pair;
          Alcotest.test_case "distinct pair" `Quick test_miter_distinct_pair;
          Alcotest.test_case "near miss" `Quick test_miter_near_miss;
          Alcotest.test_case "same node" `Quick test_miter_same_node;
          Alcotest.test_case "substitution" `Quick test_miter_with_subst;
          Alcotest.test_case "random verified" `Quick test_miter_random_verified;
          Alcotest.test_case "certified" `Quick test_miter_certified;
          Alcotest.test_case "certified random" `Quick test_miter_certified_random;
          Alcotest.test_case "po miter" `Quick test_po_miter;
        ] );
      ( "sweeper",
        [
          Alcotest.test_case "random rounds" `Quick test_random_rounds_reduce_cost;
          Alcotest.test_case "sat sweep resolves" `Quick
            test_sat_sweep_resolves_everything;
          Alcotest.test_case "guided splits near-miss" `Quick
            test_guided_round_splits_near_miss;
          Alcotest.test_case "stats accumulate" `Quick test_guided_stats_accumulate;
          Alcotest.test_case "cost history" `Quick test_cost_history_monotone;
          Alcotest.test_case "budget" `Quick test_sat_sweep_budget;
          Alcotest.test_case "gen-failure give-up" `Quick
            test_gen_failures_give_up;
          Alcotest.test_case "gen-failure fresh key after split" `Quick
            test_gen_failures_fresh_key_after_split;
          Alcotest.test_case "sat sweep should_stop" `Quick
            test_sat_sweep_should_stop;
          Alcotest.test_case "sat sweep on_cex" `Quick test_sat_sweep_on_cex;
          Alcotest.test_case "apply_vectors word-packs" `Quick
            test_apply_vectors_matches_one_by_one;
          Alcotest.test_case "merges are sound" `Quick
            test_sweep_random_networks_sound;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "merged network" `Quick
            test_merged_network_shrinks_and_preserves;
          Alcotest.test_case "merged random" `Quick test_merged_network_random;
          Alcotest.test_case "minimize cex" `Quick test_minimize_counterexample;
          Alcotest.test_case "minimize rejects" `Quick
            test_minimize_rejects_non_cex;
          Alcotest.test_case "essential bits" `Quick test_essential_bits;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "sat vectors realize outgold" `Quick
            test_sat_vectors_realize_outgold;
          Alcotest.test_case "sat vectors unsat" `Quick test_sat_vectors_unsat;
          Alcotest.test_case "pairwise fallback" `Quick
            test_sat_vectors_pairwise_fallback;
          Alcotest.test_case "sat guided round" `Quick test_sat_guided_round_splits;
          Alcotest.test_case "one distance" `Quick test_one_distance_refines;
          prop_sat_vectors_sound;
          Alcotest.test_case "outgold strategy" `Quick test_outgold_strategy_plumbed;
        ] );
      ( "session",
        [
          Alcotest.test_case "differential vs fresh" `Quick
            test_session_vs_fresh_differential;
          Alcotest.test_case "retirement" `Quick test_session_retirement;
          Alcotest.test_case "re-encode after merge" `Quick
            test_session_reencodes_after_merge;
          Alcotest.test_case "sweep routes agree" `Quick test_sweep_routes_agree;
          Alcotest.test_case "cec routes agree" `Quick test_cec_with_fresh_route;
        ] );
      ( "cec",
        [
          Alcotest.test_case "equivalent copies" `Quick test_cec_equivalent_copies;
          Alcotest.test_case "restructured copy" `Quick test_cec_restructured_copy;
          Alcotest.test_case "detects mutation" `Quick test_cec_detects_mutation;
          Alcotest.test_case "near-miss mutation" `Quick test_cec_near_miss_mutation;
          Alcotest.test_case "join" `Quick test_cec_join;
          Alcotest.test_case "report history" `Quick test_cec_report_history;
        ] );
    ]
