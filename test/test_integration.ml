(* End-to-end integration tests: full pipelines across every library, on
   real suite benchmarks. Complements the per-module suites. *)

module Suite = Simgen_benchgen.Suite
module N = Simgen_network.Network
module Aig = Simgen_aig.Aig
module Convert = Simgen_aig.Convert
module Mapper = Simgen_mapping.Lut_mapper
module Sweeper = Simgen_sweep.Sweeper
module Cec = Simgen_sweep.Cec
module Strategy = Simgen_core.Strategy
module Eq = Simgen_sim.Eq_classes
module Rng = Simgen_base.Rng
module Sweep_options = Simgen_sweep.Sweep_options

let opts ?(iterations = 10) seed =
  {
    Sweep_options.default with
    Sweep_options.seed;
    guided_iterations = iterations;
  }

(* Pipeline 1: benchmark -> sweep (random + SimGen + SAT) -> merged
   network, checking the end result against the paper's workflow
   invariants at every stage. *)
let test_full_sweep_pipeline () =
  List.iter
    (fun name ->
      let net = Suite.lut_network name in
      let o = opts 5 in
      let sw = Sweeper.create o net in
      let c_initial = Sweeper.cost sw in
      Sweeper.random_round sw;
      let c_random = Sweeper.cost sw in
      Alcotest.(check bool) "random refines" true (c_random <= c_initial);
      let g = Sweeper.run_guided o sw in
      let c_guided = Sweeper.cost sw in
      Alcotest.(check bool) "guided refines" true (c_guided <= c_random);
      Alcotest.(check bool) "guided produced vectors" true (g.Sweeper.vectors > 0);
      let s = Sweeper.sat_sweep o sw in
      Alcotest.(check bool) "sat resolves something" true (s.Sweeper.calls > 0);
      (* After sweeping no class has two distinct representatives. *)
      List.iter
        (fun cls ->
          let reps =
            List.sort_uniq compare (List.map (Sweeper.representative sw) cls)
          in
          Alcotest.(check int) "resolved" 1 (List.length reps))
        (Eq.classes (Sweeper.classes sw));
      (* The merged network is smaller and equivalent (spot-checked). *)
      let merged = Sweeper.merged_network sw in
      Alcotest.(check bool) "merge shrinks" true
        (N.num_gates merged <= N.num_gates net);
      let rng = Rng.create 99 in
      for _ = 1 to 100 do
        let vec = Array.init (N.num_pis net) (fun _ -> Rng.bool rng) in
        Alcotest.(check (array bool)) "merged equivalent" (N.eval_pos net vec)
          (N.eval_pos merged vec)
      done)
    [ "apex2"; "dec"; "b14_C" ]

(* Pipeline 2: network -> BLIF -> parse -> AIG -> map -> CEC against the
   original: every serialization and transformation step preserves the
   function. *)
let test_roundtrip_cec_pipeline () =
  let name = "cps" in
  let net = Suite.lut_network name in
  let text = Simgen_network.Blif.to_string net in
  let reparsed = Simgen_network.Blif.parse_string text in
  let aig = Convert.aig_of_network reparsed in
  let remapped = Mapper.map ~k:4 aig in
  let report = Cec.check (opts 2) net remapped in
  Alcotest.(check bool) "roundtrip equivalent" true
    (report.Cec.outcome = Cec.Equivalent)

(* Pipeline 3: the scalability path — stack a benchmark, sweep it, and
   check the cost accounting still holds at depth. *)
let test_stacked_pipeline () =
  let net = Suite.lut_network "dalu" in
  let stacked = Simgen_network.Stack_networks.stack net 3 in
  Alcotest.(check int) "3x gates" (3 * N.num_gates net) (N.num_gates stacked);
  let o = opts ~iterations:5 5 in
  let sw = Sweeper.create o stacked in
  Sweeper.random_round sw;
  ignore (Sweeper.run_guided o sw);
  let s = Sweeper.sat_sweep o sw in
  Alcotest.(check int) "accounting" s.Sweeper.calls
    (s.Sweeper.proved + s.Sweeper.disproved)

(* Pipeline 4: both verification backends agree on sweeping verdicts. *)
let test_backends_agree () =
  let net = Suite.lut_network "dec" in
  let sw = Sweeper.create (opts 5) net in
  Sweeper.random_round sw;
  let checked = ref 0 in
  List.iter
    (fun cls ->
      match cls with
      | a :: b :: _ when !checked < 10 ->
          incr checked;
          let sat = Simgen_sweep.Miter.check_pair net a b in
          let bdd = Simgen_sweep.Bdd_backend.check_pair net a b in
          (match (sat, bdd) with
           | Simgen_sweep.Miter.Equal, Simgen_sweep.Bdd_backend.Equal -> ()
           | ( Simgen_sweep.Miter.Counterexample _,
               Simgen_sweep.Bdd_backend.Counterexample _ ) ->
               ()
           | ( (Simgen_sweep.Miter.Equal | Simgen_sweep.Miter.Counterexample _),
               Simgen_sweep.Bdd_backend.Quota ) ->
               ()
           | Simgen_sweep.Miter.Equal, Simgen_sweep.Bdd_backend.Counterexample _
           | Simgen_sweep.Miter.Counterexample _, Simgen_sweep.Bdd_backend.Equal
             ->
               Alcotest.fail "backends disagree"
           | Simgen_sweep.Miter.Unknown, _ ->
               Alcotest.fail "unexpected Unknown without a budget")
      | _ -> ())
    (Eq.classes (Sweeper.classes sw));
  Alcotest.(check bool) "some pairs compared" true (!checked > 0)

(* Pipeline 5: certified sweeping — every UNSAT merge on a real benchmark
   carries a valid DRUP proof. *)
let test_certified_merges () =
  let net = Suite.lut_network "apex5" in
  let sw = Sweeper.create (opts 5) net in
  Sweeper.random_round sw;
  let proofs = ref 0 in
  List.iter
    (fun cls ->
      match cls with
      | a :: b :: _ when !proofs < 8 -> (
          match Simgen_sweep.Miter.check_pair_certified net a b with
          | Simgen_sweep.Miter.Equal, valid ->
              incr proofs;
              Alcotest.(check bool) "DRUP proof valid" true valid
          | Simgen_sweep.Miter.Counterexample _, valid ->
              Alcotest.(check bool) "cex valid" true valid
          | Simgen_sweep.Miter.Unknown, _ ->
              Alcotest.fail "unexpected Unknown without a budget")
      | _ -> ())
    (Eq.classes (Sweeper.classes sw));
  Alcotest.(check bool) "certified some merges" true (!proofs > 0)

(* Pipeline 6: ATPG on a mapped suite benchmark reaches full coverage of
   testable faults. *)
let test_atpg_pipeline () =
  let net = Suite.lut_network "priority" in
  let stats = Simgen_atpg.Tpg.campaign ~seed:2 net in
  Alcotest.(check int) "all faults classified" stats.Simgen_atpg.Tpg.total
    (stats.Simgen_atpg.Tpg.by_random + stats.Simgen_atpg.Tpg.by_guided
    + stats.Simgen_atpg.Tpg.by_sat + stats.Simgen_atpg.Tpg.untestable)

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "full sweep" `Slow test_full_sweep_pipeline;
          Alcotest.test_case "roundtrip cec" `Slow test_roundtrip_cec_pipeline;
          Alcotest.test_case "stacked" `Slow test_stacked_pipeline;
          Alcotest.test_case "backends agree" `Slow test_backends_agree;
          Alcotest.test_case "certified merges" `Slow test_certified_merges;
          Alcotest.test_case "atpg" `Slow test_atpg_pipeline;
        ] );
    ]
